(* Table 1: the advertisement rule matrix, observed on live networks so
   each row reports behaviour, not intent. Uses one TBRR network and one
   ABRR network (2 redundant ARRs) with a border router injecting a
   route, plus a second prefix outside the probed AP. *)

open Netaddr
module C = Abrr_core.Config
module N = Abrr_core.Network
module R = Abrr_core.Router
module Part = Abrr_core.Partition

let low = Prefix.of_string "20.0.0.0/16" (* AP 0 of a 2-way partition *)
let high = Prefix.of_string "200.0.0.0/16" (* AP 1 *)
let neighbor k = Ipv4.of_int (0xAC10_0000 + k)

let igp n =
  let g = Igp.Graph.create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Igp.Graph.add_edge g i j (100 + i + j)
    done
  done;
  g

let inject net router p =
  N.inject net ~router ~neighbor:(neighbor router)
    (Bgp.Route.make
       ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 7000 ])
       ~prefix:p ~next_hop:(neighbor router) ())

let yes_no b = if b then "yes" else "no"

let run () =
  (* TBRR: clusters {0,1}+{4,5} and {2,3}+{6,7}; client 4 injects. *)
  let tbrr_net =
    N.create
      (C.make ~n_routers:8 ~igp:(igp 8)
         ~scheme:
           (C.tbrr
              [ { C.trrs = [ 0; 1 ]; clients = [ 4; 5 ] };
                { C.trrs = [ 2; 3 ]; clients = [ 6; 7 ] } ])
         ())
  in
  inject tbrr_net 4 low;
  ignore (N.run tbrr_net);
  (* ABRR: ARRs {0,1} for AP0 and {2,3} for AP1; client 4 injects both
     prefixes. *)
  let abrr_net =
    N.create
      (C.make ~n_routers:8 ~igp:(igp 8)
         ~scheme:(C.abrr ~partition:(Part.uniform 2) [| [ 0; 1 ]; [ 2; 3 ] |])
         ())
  in
  inject abrr_net 4 low;
  inject abrr_net 4 high;
  ignore (N.run abrr_net);
  print_endline "== Table 1: observed advertisement behaviour ==";
  let checks =
    [
      ( "tbrr_client_to_both_trrs",
        "Client -> TRR: best eBGP route reaches both cluster TRRs",
        R.best (N.router tbrr_net 0) low <> None
        && R.best (N.router tbrr_net 1) low <> None );
      ( "tbrr_crosses_mesh",
        "TRR -> TRR: cluster best crosses the mesh",
        R.best (N.router tbrr_net 2) low <> None );
      ( "tbrr_remote_client_learns",
        "TRR -> Client: remote cluster's client learns it",
        R.received_set (N.router tbrr_net 6) ~from:2 low <> []
        || R.received_set (N.router tbrr_net 6) ~from:3 low <> [] );
      ( "tbrr_not_returned_to_sender",
        "TRR -> Client: not returned to the sending client",
        R.received_set (N.router tbrr_net 4) ~from:0 low = [] );
      ( "abrr_ap0_scoped",
        "Client -> ARR: AP0 route reaches AP0's ARRs only",
        R.reflector_set (N.router abrr_net 0) low <> []
        && R.reflector_set (N.router abrr_net 2) low = [] );
      ( "abrr_ap1_scoped",
        "Client -> ARR: AP1 route reaches AP1's ARRs only",
        R.reflector_set (N.router abrr_net 2) high <> []
        && R.reflector_set (N.router abrr_net 0) high = [] );
      ( "abrr_client_delivery",
        "ARR -> Client: best AS-level set delivered to clients",
        R.received_set (N.router abrr_net 6) ~from:0 low <> [] );
      ( "abrr_no_arr_arr_same_ap",
        "ARR -> ARR (same AP): nothing exchanged",
        R.received_set (N.router abrr_net 1) ~from:0 low = [] );
      ( "abrr_not_returned_to_sender",
        "ARR -> Client: not returned to the sending client",
        R.received_set (N.router abrr_net 4) ~from:0 low = [] );
      ( "clients_no_readvertise",
        "Clients never re-advertise iBGP-learned routes",
        R.advertised_route (N.router abrr_net 6) low = None
        && R.advertised_route (N.router tbrr_net 6) low = None );
    ]
  in
  Metrics.Table.print ~align:[ Metrics.Table.Left ] ~header:[ "rule"; "observed" ]
    (List.map (fun (_, descr, pass) -> [ descr; yes_no pass ]) checks);
  print_newline ();
  Exp_common.emit
    {
      Exp_common.E.experiment = "table1";
      runs =
        [
          Exp_common.E.run ~label:"observed"
            (List.map
               (fun (name, _, pass) ->
                 Exp_common.E.metric name (if pass then 1. else 0.))
               checks);
        ];
    }
