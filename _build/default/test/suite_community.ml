open Bgp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_community () =
  let c = Community.make 65000 120 in
  check_int "asn" 65000 (Community.asn c);
  check_int "tag" 120 (Community.tag c);
  Alcotest.(check string) "render" "65000:120" (Community.to_string c);
  check_bool "roundtrip" true
    (Community.equal c (Community.of_int32_bits (Community.to_int c)));
  check_bool "well-known" true (Community.asn Community.no_export = 0xFFFF);
  check_bool "bounds" true
    (try ignore (Community.make 70000 0); false with Invalid_argument _ -> true);
  check_bool "neg" true
    (try ignore (Community.make (-1) 0); false with Invalid_argument _ -> true)

let test_ext_community () =
  let e = Ext_community.make ~typ:0x02 ~subtyp:0x03 ~value:999 in
  check_int "typ" 0x02 (Ext_community.typ e);
  check_int "subtyp" 0x03 (Ext_community.subtyp e);
  check_int "value" 999 (Ext_community.value e);
  check_bool "not reflected" false (Ext_community.is_reflected e);
  check_bool "reflected is" true (Ext_community.is_reflected Ext_community.reflected);
  check_bool "48-bit bound" true
    (try ignore (Ext_community.make ~typ:0 ~subtyp:0 ~value:(1 lsl 48)); false
     with Invalid_argument _ -> true);
  check_bool "byte bound" true
    (try ignore (Ext_community.make ~typ:256 ~subtyp:0 ~value:0); false
     with Invalid_argument _ -> true)

let test_ordering () =
  let a = Ext_community.make ~typ:1 ~subtyp:0 ~value:0 in
  let b = Ext_community.make ~typ:2 ~subtyp:0 ~value:0 in
  check_bool "ordered" true (Ext_community.compare a b < 0);
  check_bool "equal" true (Ext_community.equal a a)

let test_asn () =
  check_bool "4-byte max" true (Asn.to_int (Asn.of_int 0xFFFF_FFFF) = 0xFFFF_FFFF);
  check_bool "rejects negative" true
    (try ignore (Asn.of_int (-1)); false with Invalid_argument _ -> true);
  check_bool "rejects too large" true
    (try ignore (Asn.of_int 0x1_0000_0000); false with Invalid_argument _ -> true)

let test_origin () =
  check_bool "ranks" true
    (Origin.rank Origin.Igp < Origin.rank Origin.Egp
    && Origin.rank Origin.Egp < Origin.rank Origin.Incomplete);
  List.iter
    (fun o -> check_bool "code roundtrip" true (Origin.of_code (Origin.to_code o) = Some o))
    [ Origin.Igp; Origin.Egp; Origin.Incomplete ];
  check_bool "bad code" true (Origin.of_code 3 = None)

let suite =
  ( "attributes",
    [
      Alcotest.test_case "communities" `Quick test_community;
      Alcotest.test_case "extended communities" `Quick test_ext_community;
      Alcotest.test_case "ext community ordering" `Quick test_ordering;
      Alcotest.test_case "ASN bounds" `Quick test_asn;
      Alcotest.test_case "origin codes" `Quick test_origin;
    ] )
