open Helpers
module N = Abrr_core.Network

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

let test_propagation () =
  let net = N.create (full_mesh_config 5) in
  inject net ~router:2 (route ~prefix 2);
  quiesce net;
  (* every router learns the route and exits via router 2 *)
  List.iteri
    (fun i e ->
      if i = 2 then check_bool "injector external" true (e = None)
      else check_bool (Printf.sprintf "r%d exit" i) true (e = Some 2))
    (exits net prefix)

let test_withdraw () =
  let net = N.create (full_mesh_config 4) in
  inject net ~router:1 (route ~prefix 1);
  quiesce net;
  N.withdraw net ~router:1 ~neighbor:(neighbor 1) prefix ~path_id:0;
  quiesce net;
  List.iter (fun e -> check_bool "gone" true (e = None)) (exits net prefix)

let test_switch_to_better () =
  let net = N.create (full_mesh_config 4) in
  inject net ~router:1 (route ~med:10 ~prefix 1);
  quiesce net;
  check_bool "first exit" true (N.best_exit net ~router:3 prefix = Some 1);
  inject net ~router:2 (route ~med:1 ~prefix 2);
  quiesce net;
  check_bool "better exit" true (N.best_exit net ~router:3 prefix = Some 2);
  (* withdrawal of the better route falls back *)
  N.withdraw net ~router:2 ~neighbor:(neighbor 2) prefix ~path_id:0;
  quiesce net;
  check_bool "fallback" true (N.best_exit net ~router:3 prefix = Some 1)

let test_hot_potato () =
  (* ring topology: each router picks its IGP-closest exit *)
  let n = 6 in
  let cfg =
    Abrr_core.Config.make ~n_routers:n ~igp:(ring_igp n)
      ~scheme:Abrr_core.Config.Full_mesh ()
  in
  let net = N.create cfg in
  inject net ~router:0 (route ~prefix 0);
  inject net ~router:3 (route ~prefix 3);
  quiesce net;
  check_bool "r1 -> 0" true (N.best_exit net ~router:1 prefix = Some 0);
  check_bool "r2 -> 3" true (N.best_exit net ~router:2 prefix = Some 3 || N.best_exit net ~router:2 prefix = Some 0);
  check_bool "r4 -> 3" true (N.best_exit net ~router:4 prefix = Some 3);
  check_bool "r5 -> 0" true (N.best_exit net ~router:5 prefix = Some 0)

let test_multi_prefix_independence () =
  let net = N.create (full_mesh_config 4) in
  let p2 = pfx "21.0.0.0/16" in
  inject net ~router:1 (route ~prefix 1);
  inject net ~router:2 (route ~prefix:p2 2);
  quiesce net;
  check_bool "p1" true (N.best_exit net ~router:0 prefix = Some 1);
  check_bool "p2" true (N.best_exit net ~router:0 p2 = Some 2)

let test_no_advert_of_ibgp_learned () =
  let net = N.create (full_mesh_config 4) in
  inject net ~router:1 (route ~prefix 1);
  quiesce net;
  (* routers whose best is iBGP-learned advertise nothing *)
  for i = 0 to 3 do
    let adv = Abrr_core.Router.advertised_route (N.router net i) prefix in
    if i = 1 then check_bool "injector advertises" true (adv <> None)
    else check_bool "silent" true (adv = None)
  done

let test_counters_track () =
  let net = N.create (full_mesh_config 4) in
  inject net ~router:1 (route ~prefix 1);
  quiesce net;
  let c = N.counters net 1 in
  (* injector generated one update and transmitted it to 3 peers *)
  check_int "generated" 1 c.Abrr_core.Counters.updates_generated;
  check_int "transmitted" 3 c.Abrr_core.Counters.updates_transmitted;
  check_bool "bytes counted" true (c.Abrr_core.Counters.bytes_transmitted > 0);
  let c0 = N.counters net 0 in
  check_int "received" 1 c0.Abrr_core.Counters.updates_received

let test_forwarding_loop_free () =
  let net = N.create (full_mesh_config 6) in
  inject net ~router:1 (route ~med:5 ~prefix 1);
  inject net ~router:4 (route ~med:5 ~prefix 4);
  quiesce net;
  check_bool "no loops" true (Abrr_core.Anomaly.forwarding_loops net prefix = [])

let suite =
  ( "full-mesh",
    [
      Alcotest.test_case "propagation" `Quick test_propagation;
      Alcotest.test_case "withdraw" `Quick test_withdraw;
      Alcotest.test_case "switch to better and fallback" `Quick test_switch_to_better;
      Alcotest.test_case "hot potato on ring" `Quick test_hot_potato;
      Alcotest.test_case "prefix independence" `Quick test_multi_prefix_independence;
      Alcotest.test_case "iBGP-learned not re-advertised" `Quick
        test_no_advert_of_ibgp_learned;
      Alcotest.test_case "counters" `Quick test_counters_track;
      Alcotest.test_case "forwarding loop-free" `Quick test_forwarding_loop_free;
    ] )
