open Netaddr
open Bgp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config ?(hold = 90) ?(add_paths = true) id =
  {
    Fsm.local_asn = Asn.of_int 65000;
    local_id = Ipv4.of_int id;
    hold_time = hold;
    add_paths;
    connect_retry = 30;
  }

let peer_open ?(hold = 180) ?(add_paths = true) () =
  Msg.Open
    {
      Msg.asn = Asn.of_int 65000;
      hold_time = hold;
      bgp_id = Ipv4.of_string "10.0.0.9";
      add_paths;
    }

let has pred actions = List.exists pred actions
let sends_open = function Fsm.Send (Msg.Open _) -> true | _ -> false
let sends_keepalive = function Fsm.Send Msg.Keepalive -> true | _ -> false
let sends_notification = function Fsm.Send (Msg.Notification _) -> true | _ -> false
let establishes = function Fsm.Session_established _ -> true | _ -> false
let goes_down = function Fsm.Session_down _ -> true | _ -> false

(* Drive a session to Established; returns the fsm. *)
let established ?hold ?add_paths ?(peer_hold = 180) ?(peer_ap = true) () =
  let t = Fsm.create (config ?hold ?add_paths 1) in
  ignore (Fsm.handle t Fsm.Start);
  ignore (Fsm.handle t Fsm.Connection_up);
  ignore (Fsm.handle t (Fsm.Message (peer_open ~hold:peer_hold ~add_paths:peer_ap ())));
  ignore (Fsm.handle t (Fsm.Message Msg.Keepalive));
  t

let test_happy_path () =
  let t = Fsm.create (config 1) in
  check_bool "idle" true (Fsm.state t = Fsm.Idle);
  let a1 = Fsm.handle t Fsm.Start in
  check_bool "connects" true (has (( = ) Fsm.Connect_transport) a1);
  check_bool "connect state" true (Fsm.state t = Fsm.Connect);
  let a2 = Fsm.handle t Fsm.Connection_up in
  check_bool "sends open" true (has sends_open a2);
  check_bool "opensent" true (Fsm.state t = Fsm.Open_sent);
  let a3 = Fsm.handle t (Fsm.Message (peer_open ())) in
  check_bool "keepalive reply" true (has sends_keepalive a3);
  check_bool "openconfirm" true (Fsm.state t = Fsm.Open_confirm);
  let a4 = Fsm.handle t (Fsm.Message Msg.Keepalive) in
  check_bool "established action" true (has establishes a4);
  check_bool "established" true (Fsm.state t = Fsm.Established);
  check_bool "peer learned" true (Fsm.peer t <> None)

let test_hold_negotiation () =
  (* min of both proposals *)
  let t = established ~hold:90 ~peer_hold:30 () in
  ignore t;
  let t2 = Fsm.create (config ~hold:90 1) in
  ignore (Fsm.handle t2 Fsm.Start);
  ignore (Fsm.handle t2 Fsm.Connection_up);
  let actions = Fsm.handle t2 (Fsm.Message (peer_open ~hold:30 ())) in
  check_bool "hold timer is min" true
    (has (function Fsm.Set_hold_timer 30 -> true | _ -> false) actions)

let test_add_paths_negotiation () =
  let t = established ~add_paths:true ~peer_ap:true () in
  check_bool "both offer -> on" true (Fsm.negotiated_add_paths t);
  let t = established ~add_paths:true ~peer_ap:false () in
  check_bool "peer declines -> off" false (Fsm.negotiated_add_paths t);
  let t = established ~add_paths:false ~peer_ap:true () in
  check_bool "we decline -> off" false (Fsm.negotiated_add_paths t)

let test_hold_expiry () =
  let t = established () in
  let actions = Fsm.handle t Fsm.Hold_timer_expired in
  check_bool "notification" true (has sends_notification actions);
  check_bool "down" true (has goes_down actions);
  check_bool "idle" true (Fsm.state t = Fsm.Idle)

let test_keepalive_refreshes () =
  let t = established ~hold:90 ~peer_hold:90 () in
  let actions = Fsm.handle t (Fsm.Message Msg.Keepalive) in
  check_bool "refresh" true
    (has (function Fsm.Set_hold_timer 90 -> true | _ -> false) actions);
  let actions = Fsm.handle t Fsm.Keepalive_timer_expired in
  check_bool "sends keepalive" true (has sends_keepalive actions);
  check_bool "still up" true (Fsm.state t = Fsm.Established)

let test_connect_retry () =
  let t = Fsm.create (config 1) in
  ignore (Fsm.handle t Fsm.Start);
  ignore (Fsm.handle t Fsm.Connection_failed);
  check_bool "active" true (Fsm.state t = Fsm.Active);
  let actions = Fsm.handle t Fsm.Connect_retry_expired in
  check_bool "retries" true (has (( = ) Fsm.Connect_transport) actions);
  check_bool "connect" true (Fsm.state t = Fsm.Connect)

let test_stop () =
  let t = established () in
  let actions = Fsm.handle t Fsm.Stop in
  check_bool "down" true (has goes_down actions);
  check_bool "idle" true (Fsm.state t = Fsm.Idle);
  (* restartable *)
  let actions = Fsm.handle t Fsm.Start in
  check_bool "restart" true (has (( = ) Fsm.Connect_transport) actions)

let test_protocol_errors () =
  (* UPDATE before OPEN *)
  let t = Fsm.create (config 1) in
  ignore (Fsm.handle t Fsm.Start);
  ignore (Fsm.handle t Fsm.Connection_up);
  let actions = Fsm.handle t (Fsm.Message Msg.Keepalive) in
  check_bool "rejected" true (has sends_notification actions);
  check_bool "reset" true (Fsm.state t = Fsm.Idle);
  (* duplicate OPEN once established *)
  let t = established () in
  let actions = Fsm.handle t (Fsm.Message (peer_open ())) in
  check_bool "dup open kills" true (has sends_notification actions)

let test_unacceptable_hold () =
  let t = Fsm.create (config 1) in
  ignore (Fsm.handle t Fsm.Start);
  ignore (Fsm.handle t Fsm.Connection_up);
  let actions = Fsm.handle t (Fsm.Message (peer_open ~hold:2 ())) in
  check_bool "rejected" true (has sends_notification actions);
  check_bool "idle" true (Fsm.state t = Fsm.Idle)

let test_peer_notification () =
  let t = established () in
  let actions =
    Fsm.handle t (Fsm.Message (Msg.Notification { Msg.code = 6; subcode = 0; data = "" }))
  in
  check_bool "down" true (has goes_down actions);
  check_bool "idle" true (Fsm.state t = Fsm.Idle)

(* --- session setup harness (§3.3) ----------------------------------- *)

let test_boot_all_established () =
  let r = Abrr_core.Session_setup.run (Abrr_core.Session_setup.spec ~sessions:50 ()) in
  check_int "all up" 50 r.Abrr_core.Session_setup.established;
  (* OPEN + KEEPALIVE inbound per session *)
  check_int "messages" 100 r.Abrr_core.Session_setup.messages_processed;
  check_bool "positive boot time" true
    (r.Abrr_core.Session_setup.boot_time > Eventsim.Time.zero)

let test_boot_scales_superlinearly_in_cpu () =
  let boot n =
    (Abrr_core.Session_setup.run (Abrr_core.Session_setup.spec ~sessions:n ()))
      .Abrr_core.Session_setup.boot_time
  in
  let b100 = boot 100 and b1000 = boot 1000 in
  check_bool "more sessions, longer boot" true (b1000 > b100);
  (* at 1000 sessions the CPU serialization dominates the RTT *)
  check_bool "cpu-bound regime" true
    (b1000 > Eventsim.Time.ms 400 && b1000 < Eventsim.Time.sec 2)

let suite =
  ( "fsm",
    [
      Alcotest.test_case "happy path" `Quick test_happy_path;
      Alcotest.test_case "hold-time negotiation" `Quick test_hold_negotiation;
      Alcotest.test_case "add-paths negotiation" `Quick test_add_paths_negotiation;
      Alcotest.test_case "hold expiry" `Quick test_hold_expiry;
      Alcotest.test_case "keepalive" `Quick test_keepalive_refreshes;
      Alcotest.test_case "connect retry" `Quick test_connect_retry;
      Alcotest.test_case "stop/restart" `Quick test_stop;
      Alcotest.test_case "protocol errors" `Quick test_protocol_errors;
      Alcotest.test_case "unacceptable hold" `Quick test_unacceptable_hold;
      Alcotest.test_case "peer notification" `Quick test_peer_notification;
      Alcotest.test_case "boot: all sessions" `Quick test_boot_all_established;
      Alcotest.test_case "boot: scaling" `Quick test_boot_scales_superlinearly_in_cpu;
    ] )
