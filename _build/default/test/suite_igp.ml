let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let diamond () =
  (* 0 -1- 1 -1- 3 ; 0 -5- 2 -1- 3 *)
  let g = Igp.Graph.create ~n:4 in
  Igp.Graph.add_edge g 0 1 1;
  Igp.Graph.add_edge g 1 3 1;
  Igp.Graph.add_edge g 0 2 5;
  Igp.Graph.add_edge g 2 3 1;
  g

let test_graph_basics () =
  let g = diamond () in
  check_int "nodes" 4 (Igp.Graph.node_count g);
  check_int "arcs" 8 (Igp.Graph.edge_count g);
  check_int "degree" 2 (Igp.Graph.degree g 0);
  check_bool "metric" true (Igp.Graph.metric g 0 1 = Some 1);
  check_bool "no metric" true (Igp.Graph.metric g 0 3 = None);
  (* re-adding keeps the smaller metric *)
  Igp.Graph.add_edge g 0 1 10;
  check_bool "keeps min" true (Igp.Graph.metric g 0 1 = Some 1);
  Igp.Graph.add_edge g 0 1 0;
  check_bool "lowers" true (Igp.Graph.metric g 0 1 = Some 0)

let test_spf_distances () =
  let dist = Igp.Spf.distances (diamond ()) ~src:0 in
  check_int "self" 0 dist.(0);
  check_int "d1" 1 dist.(1);
  check_int "d3 via 1" 2 dist.(3);
  check_int "d2 direct" 3 dist.(2)
  (* 0-1-3-2 = 1+1+1 = 3 < direct 5 *)

let test_spf_path () =
  match Igp.Spf.path (diamond ()) ~src:0 ~dst:3 with
  | Some [ 0; 1; 3 ] -> ()
  | Some p ->
    Alcotest.failf "wrong path: %s" (String.concat "," (List.map string_of_int p))
  | None -> Alcotest.fail "no path"

let test_unreachable () =
  let g = Igp.Graph.create ~n:3 in
  Igp.Graph.add_edge g 0 1 1;
  let dist = Igp.Spf.distances g ~src:0 in
  check_bool "unreachable" true (dist.(2) = Igp.Spf.unreachable);
  check_bool "not connected" false (Igp.Spf.connected g);
  check_bool "path none" true (Igp.Spf.path g ~src:0 ~dst:2 = None)

let test_all_pairs_symmetric () =
  let m = Igp.Spf.all_pairs (diamond ()) in
  for i = 0 to 3 do
    for j = 0 to 3 do
      check_int (Printf.sprintf "sym %d %d" i j) m.(i).(j) m.(j).(i)
    done
  done

let test_remove_edge () =
  let g = diamond () in
  Igp.Graph.remove_edge g 0 1;
  let dist = Igp.Spf.distances g ~src:0 in
  check_int "reroutes" 5 dist.(2);
  check_int "d3" 6 dist.(3)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"all-pairs satisfies triangle inequality" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 5 30)
        (triple (int_bound 9) (int_bound 9) (int_range 1 100)))
    (fun edges ->
      let g = Igp.Graph.create ~n:10 in
      List.iter (fun (u, v, m) -> if u <> v then Igp.Graph.add_edge g u v m) edges;
      let d = Igp.Spf.all_pairs g in
      let ok = ref true in
      for i = 0 to 9 do
        for j = 0 to 9 do
          for k = 0 to 9 do
            if
              d.(i).(k) <> Igp.Spf.unreachable
              && d.(k).(j) <> Igp.Spf.unreachable
              && d.(i).(j) <> Igp.Spf.unreachable
            then if d.(i).(j) > d.(i).(k) + d.(k).(j) then ok := false
          done
        done
      done;
      !ok)

let suite =
  ( "igp",
    [
      Alcotest.test_case "graph basics" `Quick test_graph_basics;
      Alcotest.test_case "spf distances" `Quick test_spf_distances;
      Alcotest.test_case "spf path" `Quick test_spf_path;
      Alcotest.test_case "unreachable" `Quick test_unreachable;
      Alcotest.test_case "all pairs symmetric" `Quick test_all_pairs_symmetric;
      Alcotest.test_case "remove edge reroutes" `Quick test_remove_edge;
      QCheck_alcotest.to_alcotest prop_triangle_inequality;
    ] )
