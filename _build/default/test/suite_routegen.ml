module T = Topo.Isp_topo
module RG = Topo.Route_gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let topo = T.generate (T.spec ~pops:6 ~routers_per_pop:6 ~peer_ases:10 ~peering_points_per_as:5 ())
let table = RG.generate topo (RG.spec ~n_prefixes:400 ~seed:3 ())

let test_counts () =
  check_int "prefixes" 400 (Array.length table.RG.prefixes);
  let peer = RG.peer_prefix_count table in
  (* 76% +- sampling noise *)
  check_bool "peer share" true (peer > 250 && peer < 350);
  check_bool "routes exist" true (RG.total_routes table > 400)

let test_prefixes_distinct_and_clear_of_conventions () =
  let keys = Array.map Netaddr.Prefix.to_key table.RG.prefixes in
  let distinct = List.sort_uniq Int.compare (Array.to_list keys) in
  check_int "distinct" 400 (List.length distinct);
  Array.iter
    (fun p ->
      let a, _, _, _ = Netaddr.Ipv4.to_octets (Netaddr.Prefix.addr p) in
      check_bool "octet clear" true (a <> 10 && a <> 127 && a <> 172 && a <> 192))
    table.RG.prefixes

let test_every_prefix_has_a_route () =
  Array.iteri
    (fun i entries ->
      check_bool (Printf.sprintf "prefix %d" i) true (entries <> []))
    table.RG.routes

let test_unique_path_ids () =
  let ids = Hashtbl.create 1024 in
  Array.iter
    (List.iter (fun (e : RG.ebgp_route) ->
         let id = e.RG.route.Bgp.Route.path_id in
         check_bool "unique id" false (Hashtbl.mem ids id);
         Hashtbl.add ids id ()))
    table.RG.routes

let test_peer_routes_on_peering_routers () =
  Array.iteri
    (fun i entries ->
      if table.RG.from_peers.(i) then
        List.iter
          (fun (e : RG.ebgp_route) ->
            check_bool "on peering router" true
              (List.mem e.RG.router topo.T.peering_routers))
          entries
      else
        List.iter
          (fun (e : RG.ebgp_route) ->
            check_bool "on access router" true
              (List.mem e.RG.router topo.T.access_routers))
          entries)
    table.RG.routes

let test_bal_grows_with_peer_ases () =
  let bal k =
    let keep asn = Bgp.Asn.to_int asn - 3000 < k in
    Analysis.Bal.average ~med_mode:Bgp.Decision.Per_neighbor_as
      (RG.tables ~peer_filter:keep table)
  in
  let b2 = bal 2 and b5 = bal 5 and b10 = bal 10 in
  check_bool "monotone" true (b2 <= b5 && b5 <= b10);
  check_bool "nontrivial diversity" true (b10 > 1.5)

let test_all_sources_at_least_peers_only () =
  let peers_only =
    Analysis.Bal.average ~med_mode:Bgp.Decision.Per_neighbor_as
      (RG.tables ~include_customers:false table
      |> List.filter (fun (_, rs) -> rs <> []))
  in
  let all =
    Analysis.Bal.average ~med_mode:Bgp.Decision.Per_neighbor_as (RG.tables table)
  in
  check_bool "both positive" true (peers_only > 0. && all > 0.)

let test_determinism () =
  let t2 = RG.generate topo (RG.spec ~n_prefixes:400 ~seed:3 ()) in
  check_int "same total" (RG.total_routes table) (RG.total_routes t2);
  check_bool "same prefixes" true (table.RG.prefixes = t2.RG.prefixes)

let test_peer_asns () =
  let asns = RG.peer_asns table in
  check_bool "some peers" true (List.length asns > 0);
  check_bool "all in range" true
    (List.for_all (fun a -> Bgp.Asn.to_int a >= 3000 && Bgp.Asn.to_int a < 3010) asns)

let test_spec_validation () =
  check_bool "bad share" true
    (try ignore (RG.spec ~peer_share:1.5 ()); false with Invalid_argument _ -> true);
  check_bool "bad count" true
    (try ignore (RG.spec ~n_prefixes:0 ()); false with Invalid_argument _ -> true)

let suite =
  ( "route-gen",
    [
      Alcotest.test_case "counts" `Quick test_counts;
      Alcotest.test_case "prefixes distinct and clear" `Quick
        test_prefixes_distinct_and_clear_of_conventions;
      Alcotest.test_case "every prefix routed" `Quick test_every_prefix_has_a_route;
      Alcotest.test_case "unique path ids" `Quick test_unique_path_ids;
      Alcotest.test_case "router classes" `Quick test_peer_routes_on_peering_routers;
      Alcotest.test_case "BAL grows with peer ASes (Fig 3 shape)" `Quick
        test_bal_grows_with_peer_ases;
      Alcotest.test_case "all-sources vs peers-only" `Quick
        test_all_sources_at_least_peers_only;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "peer ASNs" `Quick test_peer_asns;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
    ] )
