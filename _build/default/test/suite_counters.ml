module Ct = Abrr_core.Counters

let check_int = Alcotest.(check int)

let filled () =
  let c = Ct.create () in
  c.Ct.updates_received <- 3;
  c.Ct.updates_generated <- 5;
  c.Ct.updates_transmitted <- 7;
  c.Ct.messages_transmitted <- 2;
  c.Ct.bytes_transmitted <- 100;
  c.Ct.bytes_received <- 90;
  c.Ct.withdrawals_received <- 1;
  c.Ct.withdrawals_transmitted <- 2;
  c.Ct.decisions_run <- 11;
  c.Ct.last_change <- Eventsim.Time.sec 9;
  c

let test_add () =
  let acc = filled () and x = filled () in
  x.Ct.last_change <- Eventsim.Time.sec 4;
  Ct.add acc x;
  check_int "rx" 6 acc.Ct.updates_received;
  check_int "gen" 10 acc.Ct.updates_generated;
  check_int "tx" 14 acc.Ct.updates_transmitted;
  check_int "bytes" 200 acc.Ct.bytes_transmitted;
  check_int "decisions" 22 acc.Ct.decisions_run;
  (* last_change takes the max *)
  check_int "last change" (Eventsim.Time.sec 9) acc.Ct.last_change

let test_reset () =
  let c = filled () in
  Ct.reset c;
  check_int "rx" 0 c.Ct.updates_received;
  check_int "gen" 0 c.Ct.updates_generated;
  check_int "bytes" 0 c.Ct.bytes_transmitted;
  check_int "last change" Eventsim.Time.zero c.Ct.last_change

let suite =
  ( "counters",
    [
      Alcotest.test_case "add accumulates" `Quick test_add;
      Alcotest.test_case "reset" `Quick test_reset;
    ] )
