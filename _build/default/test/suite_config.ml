open Helpers
module C = Abrr_core.Config
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)

let expect_error cfg =
  match C.validate cfg with Ok () -> false | Error _ -> true

let base scheme = C.make ~n_routers:4 ~igp:(flat_igp 4) ~scheme ()

let test_full_mesh_valid () =
  check_bool "ok" true (C.validate (base C.Full_mesh) = Ok ())

let test_igp_size_mismatch () =
  let cfg = C.make ~n_routers:5 ~igp:(flat_igp 4) ~scheme:C.Full_mesh () in
  check_bool "size mismatch" true (expect_error cfg)

let test_tbrr_validation () =
  check_bool "empty clusters" true (expect_error (base (C.tbrr [])));
  check_bool "cluster without trr" true
    (expect_error (base (C.tbrr [ { C.trrs = []; clients = [ 1 ] } ])));
  check_bool "out of range" true
    (expect_error (base (C.tbrr [ { C.trrs = [ 9 ]; clients = [] } ])));
  check_bool "trr is own client" true
    (expect_error (base (C.tbrr [ { C.trrs = [ 0 ]; clients = [ 0 ] } ])));
  check_bool "valid" true
    (C.validate (base (C.tbrr [ { C.trrs = [ 0 ]; clients = [ 1; 2; 3 ] } ])) = Ok ())

let test_abrr_validation () =
  let part = Part.uniform 2 in
  check_bool "length mismatch" true
    (expect_error (base (C.abrr ~partition:part [| [ 0 ] |])));
  check_bool "empty arr set" true
    (expect_error (base (C.abrr ~partition:part [| [ 0 ]; [] |])));
  check_bool "out of range" true
    (expect_error (base (C.abrr ~partition:part [| [ 0 ]; [ 12 ] |])));
  check_bool "valid" true
    (C.validate (base (C.abrr ~partition:part [| [ 0 ]; [ 1 ] |])) = Ok ())

let test_dual_validation () =
  let tbrr = { C.clusters = [ { C.trrs = [ 0 ]; clients = [ 1; 2; 3 ] } ]; multipath = false; best_external = false } in
  let abrr =
    { C.partition = Part.uniform 2; arrs = [| [ 1 ]; [ 2 ] |];
      loop_prevention = C.Reflected_bit }
  in
  let good = C.Dual { tbrr; abrr; accept = Array.make 2 C.Accept_tbrr } in
  check_bool "valid" true (C.validate (base good) = Ok ());
  let bad = C.Dual { tbrr; abrr; accept = Array.make 3 C.Accept_tbrr } in
  check_bool "accept length" true (expect_error (base bad))

let test_add_paths () =
  check_bool "full mesh off" false (C.add_paths (base C.Full_mesh));
  check_bool "tbrr single off" false
    (C.add_paths (base (C.tbrr [ { C.trrs = [ 0 ]; clients = [ 1 ] } ])));
  check_bool "tbrr multi on" true
    (C.add_paths (base (C.tbrr ~multipath:true [ { C.trrs = [ 0 ]; clients = [ 1 ] } ])));
  check_bool "abrr on" true
    (C.add_paths (base (C.abrr ~partition:(Part.uniform 1) [| [ 0 ] |])))

let test_loopback () =
  let cfg = base C.Full_mesh in
  Alcotest.(check string) "loopback" "10.0.0.3"
    (Netaddr.Ipv4.to_string (C.loopback 3));
  check_bool "roundtrip" true (C.router_of_loopback cfg (C.loopback 2) = Some 2);
  check_bool "out of range" true
    (C.router_of_loopback cfg (C.loopback 200) = None);
  check_bool "non loopback" true
    (C.router_of_loopback cfg (Netaddr.Ipv4.of_string "172.16.0.1") = None)

let test_proc_delay_of () =
  let cfg =
    C.make ~proc_delay:(Eventsim.Time.ms 10) ~proc_jitter:(Eventsim.Time.ms 100)
      ~n_routers:4 ~igp:(flat_igp 4) ~scheme:C.Full_mesh ()
  in
  let base_delay = Eventsim.Time.ms 10 in
  for i = 0 to 3 do
    let d = C.proc_delay_of cfg i in
    check_bool "within window" true
      (d >= base_delay && d < base_delay + Eventsim.Time.ms 100)
  done;
  (* deterministic *)
  check_bool "stable" true (C.proc_delay_of cfg 1 = C.proc_delay_of cfg 1);
  let nojitter = C.make ~n_routers:4 ~igp:(flat_igp 4) ~scheme:C.Full_mesh () in
  check_bool "no jitter" true (C.proc_delay_of nojitter 2 = nojitter.C.proc_delay)

let test_default_link_delay () =
  let d = C.default_link_delay 3 7 in
  check_bool "at least 1ms" true (d >= Eventsim.Time.ms 1);
  check_bool "deterministic" true (d = C.default_link_delay 3 7)

let suite =
  ( "config",
    [
      Alcotest.test_case "full mesh valid" `Quick test_full_mesh_valid;
      Alcotest.test_case "igp size mismatch" `Quick test_igp_size_mismatch;
      Alcotest.test_case "tbrr validation" `Quick test_tbrr_validation;
      Alcotest.test_case "abrr validation" `Quick test_abrr_validation;
      Alcotest.test_case "dual validation" `Quick test_dual_validation;
      Alcotest.test_case "add-paths flag" `Quick test_add_paths;
      Alcotest.test_case "loopback mapping" `Quick test_loopback;
      Alcotest.test_case "processing delay jitter" `Quick test_proc_delay_of;
      Alcotest.test_case "link delay" `Quick test_default_link_delay;
    ] )
