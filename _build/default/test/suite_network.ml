open Helpers
module C = Abrr_core.Config
module N = Abrr_core.Network
module R = Abrr_core.Router
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = pfx "20.0.0.0/16"

let test_hooks_fire () =
  let net = N.create (full_mesh_config 4) in
  let calls = ref 0 in
  N.on_best_change net (fun _ _ _ -> incr calls);
  N.on_best_change net (fun _ _ _ -> incr calls);
  inject net ~router:1 (route ~prefix 1);
  quiesce net;
  (* 4 routers adopt the route; two hooks each *)
  check_int "hook calls" 8 !calls;
  check_int "best changes" 4 (N.best_changes net)

let test_total_counters () =
  let net = N.create (full_mesh_config 4) in
  inject net ~router:1 (route ~prefix 1);
  quiesce net;
  let total = N.total_counters net in
  check_int "tx == rx" total.Abrr_core.Counters.updates_transmitted
    total.Abrr_core.Counters.updates_received;
  check_int "bytes tx == rx" total.Abrr_core.Counters.bytes_transmitted
    total.Abrr_core.Counters.bytes_received

let test_igp_failure_reroute () =
  (* line topology 0-1-2-3; exits at both ends; router 1 prefers exit 0.
     Cutting 0-1 must reroute router 1 to exit 3 after refresh_igp. *)
  let g = Igp.Graph.create ~n:4 in
  Igp.Graph.add_edge g 0 1 10;
  Igp.Graph.add_edge g 1 2 10;
  Igp.Graph.add_edge g 2 3 10;
  (* a backup path so the graph stays connected *)
  Igp.Graph.add_edge g 0 3 100;
  let cfg = C.make ~n_routers:4 ~igp:g ~scheme:C.Full_mesh () in
  let net = N.create cfg in
  inject net ~router:0 (route ~prefix 0);
  inject net ~router:3 (route ~prefix 3);
  quiesce net;
  check_bool "before" true (N.best_exit net ~router:1 prefix = Some 0);
  check_int "igp distance" 10 (N.igp_distance net 1 0);
  Igp.Graph.remove_edge g 0 1;
  N.refresh_igp net;
  quiesce net;
  check_int "distance after" 20 (N.igp_distance net 1 3);
  check_bool "rerouted" true (N.best_exit net ~router:1 prefix = Some 3)

let test_igp_partition_drops_routes () =
  (* disconnecting the only exit invalidates the route (unreachable
     next hop) at remote routers *)
  let g = Igp.Graph.create ~n:3 in
  Igp.Graph.add_edge g 0 1 10;
  Igp.Graph.add_edge g 1 2 10;
  let cfg = C.make ~n_routers:3 ~igp:g ~scheme:C.Full_mesh () in
  let net = N.create cfg in
  inject net ~router:0 (route ~prefix 0);
  quiesce net;
  check_bool "reachable" true (N.best_exit net ~router:2 prefix = Some 0);
  Igp.Graph.remove_edge g 0 1;
  N.refresh_igp net;
  quiesce net;
  check_bool "unreachable next hop drops route" true
    (N.best net ~router:2 prefix = None)

let test_control_plane_rrs () =
  (* pure control-plane ARRs (§3.3): reflect but hold no data-plane state
     for other APs and inject nothing *)
  let part = Part.uniform 2 in
  let cfg =
    C.make ~control_plane_rrs:true ~n_routers:6 ~igp:(flat_igp 6)
      ~scheme:(C.abrr ~partition:part [| [ 0 ]; [ 1 ] |])
      ()
  in
  let net = N.create cfg in
  let low = pfx "20.0.0.0/16" and high = pfx "200.0.0.0/16" in
  inject net ~router:2 (route ~prefix:low 2);
  inject net ~router:3 (route ~prefix:high 3);
  quiesce net;
  (* clients resolve both prefixes *)
  check_bool "client low" true (N.best_exit net ~router:4 low = Some 2);
  check_bool "client high" true (N.best_exit net ~router:4 high = Some 3);
  (* ARR 0 reflects its AP but receives nothing for the other AP *)
  check_bool "arr manages own" true (R.reflector_set (N.router net 0) low <> []);
  check_bool "arr has no other-AP state" true
    (N.best net ~router:0 high = None)

let test_at_scheduling () =
  let net = N.create (full_mesh_config 3) in
  N.at net (Eventsim.Time.sec 5) (fun () -> inject net ~router:1 (route ~prefix 1));
  quiesce net;
  check_bool "applied" true (N.best_exit net ~router:0 prefix = Some 1);
  check_bool "time advanced" true (N.last_change net >= Eventsim.Time.sec 5)

let test_router_bounds () =
  let net = N.create (full_mesh_config 3) in
  check_bool "raises" true
    (try ignore (N.router net 3); false with Invalid_argument _ -> true)

let test_invalid_config_rejected () =
  let cfg = C.make ~n_routers:2 ~igp:(flat_igp 3) ~scheme:C.Full_mesh () in
  check_bool "raises" true
    (try ignore (N.create cfg); false with Invalid_argument _ -> true)

let test_multi_ap_arr () =
  (* one router serving two APs reflects both *)
  let part = Part.uniform 2 in
  let cfg =
    C.make ~n_routers:4 ~igp:(flat_igp 4)
      ~scheme:(C.abrr ~partition:part [| [ 0 ]; [ 0 ] |])
      ()
  in
  let net = N.create cfg in
  let low = pfx "20.0.0.0/16" and high = pfx "200.0.0.0/16" in
  inject net ~router:1 (route ~prefix:low 1);
  inject net ~router:2 (route ~prefix:high 2);
  quiesce net;
  let arr = N.router net 0 in
  check_bool "serves both" true (R.arr_aps arr = [ 0; 1 ]);
  check_bool "low set" true (R.reflector_set arr low <> []);
  check_bool "high set" true (R.reflector_set arr high <> []);
  check_bool "client sees both" true
    (N.best_exit net ~router:3 low = Some 1 && N.best_exit net ~router:3 high = Some 2)

let test_two_ebgp_routes_same_router () =
  (* a border router with two eBGP sessions for one prefix advertises
     its AS-level survivors; withdrawal of the better one falls back *)
  let net = N.create (single_ap_abrr ~arrs:[ 0 ] ~n:4 ()) in
  inject net ~router:2 ~k:21 (route ~asn:7000 ~med:1 ~path_id:1 ~prefix 21);
  inject net ~router:2 ~k:22 (route ~asn:8000 ~med:9 ~path_id:2 ~prefix 22);
  quiesce net;
  (* both survive steps 1-4 (different ASes) and are advertised *)
  check_int "set size" 2 (List.length (R.reflector_set (N.router net 0) prefix));
  N.withdraw net ~router:2 ~neighbor:(neighbor 21) prefix ~path_id:1;
  quiesce net;
  check_int "one left" 1 (List.length (R.reflector_set (N.router net 0) prefix));
  check_bool "still resolves" true (N.best_exit net ~router:3 prefix = Some 2)

let test_lpm_lookup () =
  let net = N.create (full_mesh_config 4) in
  let coarse = pfx "20.0.0.0/8" and fine = pfx "20.5.0.0/16" in
  inject net ~router:1 (route ~prefix:coarse 1);
  inject net ~router:2 (route ~prefix:fine 2);
  quiesce net;
  let exit_of addr =
    match N.lookup net ~router:3 (Netaddr.Ipv4.of_string addr) with
    | Some (_, r) -> Some (owner_of_route r)
    | None -> None
  in
  check_bool "specific wins" true (exit_of "20.5.9.9" = Some 2);
  check_bool "coarse covers" true (exit_of "20.200.0.1" = Some 1);
  check_bool "miss" true (exit_of "21.0.0.1" = None);
  (* withdrawing the specific falls back to the covering prefix *)
  N.withdraw net ~router:2 ~neighbor:(neighbor 2) fine ~path_id:0;
  quiesce net;
  check_bool "fallback to coarse" true (exit_of "20.5.9.9" = Some 1)

let suite =
  ( "network",
    [
      Alcotest.test_case "hooks" `Quick test_hooks_fire;
      Alcotest.test_case "total counters balance" `Quick test_total_counters;
      Alcotest.test_case "IGP failure reroutes" `Quick test_igp_failure_reroute;
      Alcotest.test_case "IGP partition drops routes" `Quick
        test_igp_partition_drops_routes;
      Alcotest.test_case "control-plane RRs" `Quick test_control_plane_rrs;
      Alcotest.test_case "absolute-time scheduling" `Quick test_at_scheduling;
      Alcotest.test_case "router bounds" `Quick test_router_bounds;
      Alcotest.test_case "invalid config rejected" `Quick
        test_invalid_config_rejected;
      Alcotest.test_case "multi-AP ARR" `Quick test_multi_ap_arr;
      Alcotest.test_case "two eBGP routes one router" `Quick
        test_two_ebgp_routes_same_router;
      Alcotest.test_case "LPM forwarding lookup" `Quick test_lpm_lookup;
    ] )
