(* §2.4: incremental TBRR -> ABRR cutover, one AP at a time, with no
   routing interruption at any stage. *)

open Helpers
module N = Abrr_core.Network
module C = Abrr_core.Config
module Part = Abrr_core.Partition

let check_bool = Alcotest.(check bool)

let low = pfx "20.0.0.0/16" (* AP 0 under a 2-way uniform partition *)
let high = pfx "200.0.0.0/16" (* AP 1 *)

(* 8 routers: TBRR clusters {0,1}+{4,5} and {2,3}+{6,7}; ABRR ARRs on
   routers 1 (AP0) and 3 (AP1). During transition both run. *)
let dual_config () =
  let tbrr =
    {
      C.clusters =
        [
          { C.trrs = [ 0; 1 ]; clients = [ 4; 5 ] };
          { C.trrs = [ 2; 3 ]; clients = [ 6; 7 ] };
        ];
      multipath = false;
      best_external = false;
    }
  in
  let abrr =
    {
      C.partition = Part.uniform 2;
      arrs = [| [ 1 ]; [ 3 ] |];
      loop_prevention = C.Reflected_bit;
    }
  in
  let accept = Array.make 2 C.Accept_tbrr in
  C.make ~n_routers:8 ~igp:(flat_igp 8)
    ~scheme:(C.Dual { tbrr; abrr; accept })
    ()

let all_resolve net =
  List.for_all
    (fun (p, exit) ->
      List.for_all
        (fun i -> N.best_exit net ~router:i p = Some exit || i = exit)
        (List.init 8 Fun.id))
    [ (low, 4); (high, 6) ]

let test_staged_cutover () =
  let net = N.create (dual_config ()) in
  inject net ~router:4 (route ~prefix:low 4);
  inject net ~router:6 (route ~prefix:high 6);
  quiesce net;
  (* stage 0: all TBRR *)
  check_bool "tbrr stage" true (all_resolve net);
  Alcotest.(check bool) "accept tbrr" true (N.acceptance net 0 = C.Accept_tbrr);
  (* stage 1: cut AP 0 over to ABRR *)
  N.set_acceptance net ~ap:0 C.Accept_abrr;
  quiesce net;
  check_bool "mixed stage" true (all_resolve net);
  (* stage 2: cut AP 1 over *)
  N.set_acceptance net ~ap:1 C.Accept_abrr;
  quiesce net;
  check_bool "abrr stage" true (all_resolve net)

let test_rollback () =
  let net = N.create (dual_config ()) in
  inject net ~router:4 (route ~prefix:low 4);
  quiesce net;
  N.set_acceptance net ~ap:0 C.Accept_abrr;
  quiesce net;
  check_bool "after cutover" true (N.best_exit net ~router:7 low = Some 4);
  N.set_acceptance net ~ap:0 C.Accept_tbrr;
  quiesce net;
  check_bool "after rollback" true (N.best_exit net ~router:7 low = Some 4)

let test_updates_during_transition () =
  let net = N.create (dual_config ()) in
  inject net ~router:4 (route ~med:10 ~prefix:low 4);
  quiesce net;
  N.set_acceptance net ~ap:0 C.Accept_abrr;
  quiesce net;
  (* a better route arriving mid-transition is honoured *)
  inject net ~router:5 (route ~med:1 ~prefix:low 5);
  quiesce net;
  check_bool "new best via abrr" true (N.best_exit net ~router:7 low = Some 5);
  (* and withdrawal falls back *)
  N.withdraw net ~router:5 ~neighbor:(neighbor 5) low ~path_id:0;
  quiesce net;
  check_bool "fallback" true (N.best_exit net ~router:7 low = Some 4)

let test_acceptance_outside_dual_rejected () =
  let net = N.create (full_mesh_config 3) in
  check_bool "raises" true
    (try
       N.set_acceptance net ~ap:0 C.Accept_abrr;
       false
     with Invalid_argument _ -> true)

let test_both_planes_active () =
  (* while accepting TBRR, the ABRR plane is already fully populated so
     the cutover is hitless *)
  let net = N.create (dual_config ()) in
  inject net ~router:4 (route ~prefix:low 4);
  quiesce net;
  let arr = N.router net 1 in
  check_bool "ARR set populated pre-cutover" true
    (Abrr_core.Router.reflector_set arr low <> [])

let suite =
  ( "transition",
    [
      Alcotest.test_case "staged cutover" `Quick test_staged_cutover;
      Alcotest.test_case "rollback" `Quick test_rollback;
      Alcotest.test_case "updates mid-transition" `Quick
        test_updates_during_transition;
      Alcotest.test_case "acceptance needs Dual" `Quick
        test_acceptance_outside_dual_rejected;
      Alcotest.test_case "ABRR plane live before cutover" `Quick
        test_both_planes_active;
    ] )
