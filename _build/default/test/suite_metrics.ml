let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let close a b = Float.abs (a -. b) < 1e-9

let test_summary () =
  let s = Metrics.Summary.of_list [ 1.; 2.; 3.; 4. ] in
  check_int "count" 4 s.Metrics.Summary.count;
  check_bool "min" true (close s.Metrics.Summary.min 1.);
  check_bool "max" true (close s.Metrics.Summary.max 4.);
  check_bool "mean" true (close s.Metrics.Summary.mean 2.5);
  check_bool "sum" true (close s.Metrics.Summary.sum 10.);
  check_bool "empty raises" true
    (try ignore (Metrics.Summary.of_list []); false with Invalid_argument _ -> true)

let test_percentile () =
  let xs = [ 10.; 20.; 30.; 40.; 50. ] in
  check_bool "p0" true (close (Metrics.Summary.percentile xs 0.) 10.);
  check_bool "p50" true (close (Metrics.Summary.percentile xs 50.) 30.);
  check_bool "p100" true (close (Metrics.Summary.percentile xs 100.) 50.);
  check_bool "p25 interpolates" true (close (Metrics.Summary.percentile xs 25.) 20.);
  check_bool "median" true (close (Metrics.Summary.median xs) 30.);
  check_bool "range check" true
    (try ignore (Metrics.Summary.percentile xs 101.); false
     with Invalid_argument _ -> true)

let test_histogram () =
  let h = Metrics.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Metrics.Histogram.add h) [ 0.5; 1.5; 2.5; 9.9; -3.; 100. ];
  check_int "total" 6 (Metrics.Histogram.count h);
  let counts = Metrics.Histogram.bin_counts h in
  (* 0.5 and 1.5 fall in [0,2); -3 underflows into the same bin *)
  check_int "first bin holds underflow" 3 counts.(0);
  check_int "second bin" 1 counts.(1);
  check_int "last bin holds overflow" 2 counts.(4);
  let lo, hi = Metrics.Histogram.bin_bounds h 1 in
  check_bool "bounds" true (close lo 2. && close hi 4.)

let test_table_render () =
  let s =
    Metrics.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  check_bool "has rule" true (String.length s > 0 && String.contains s '-');
  check_bool "aligned" true
    (List.length (String.split_on_char '\n' s) = 4)

let test_fmt_int () =
  Alcotest.(check string) "thousands" "1,234,567" (Metrics.Table.fmt_int 1_234_567);
  Alcotest.(check string) "small" "42" (Metrics.Table.fmt_int 42);
  Alcotest.(check string) "negative" "-1,000" (Metrics.Table.fmt_int (-1000));
  Alcotest.(check string) "zero" "0" (Metrics.Table.fmt_int 0)

let test_series () =
  let s =
    Metrics.Table.series ~title:"t" ~x_label:"x" ~y_labels:[ "a"; "b" ]
      [ (1., [ 2.; 3. ]); (2., [ 4.; 5. ]) ]
  in
  check_bool "title" true (String.length s > 0 && s.[0] = '=')

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, q) ->
      let p = Metrics.Summary.percentile xs q in
      let s = Metrics.Summary.of_list xs in
      p >= s.Metrics.Summary.min -. 1e-9 && p <= s.Metrics.Summary.max +. 1e-9)

let suite =
  ( "metrics",
    [
      Alcotest.test_case "summary" `Quick test_summary;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "fmt_int" `Quick test_fmt_int;
      Alcotest.test_case "series" `Quick test_series;
      QCheck_alcotest.to_alcotest prop_percentile_bounds;
    ] )
