open Netaddr

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_roundtrip () =
  List.iter
    (fun s -> check_str s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "192.168.1.254"; "1.2.3.4" ]

let test_octets () =
  let a = Ipv4.of_octets 10 20 30 40 in
  check_str "octets" "10.20.30.40" (Ipv4.to_string a);
  let x, y, z, w = Ipv4.to_octets a in
  check_int "o1" 10 x;
  check_int "o2" 20 y;
  check_int "o3" 30 z;
  check_int "o4" 40 w

let test_parse_rejects () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true (Ipv4.of_string_opt s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "1..2.3"; "a.b.c.d"; "1.2.3.4 "; "01.2.3.4567" ]

let test_parse_accepts_leading_zero () =
  (* three digits max per octet; leading zeros are tolerated *)
  check_bool "leading zero" true (Ipv4.of_string_opt "001.002.003.004" <> None)

let test_ordering () =
  let a = Ipv4.of_string "1.0.0.0" and b = Ipv4.of_string "2.0.0.0" in
  check_bool "lt" true (Ipv4.compare a b < 0);
  check_bool "eq" true (Ipv4.equal a (Ipv4.of_string "1.0.0.0"))

let test_succ_pred_wrap () =
  check_str "succ wraps" "0.0.0.0" (Ipv4.to_string (Ipv4.succ Ipv4.max_addr));
  check_str "pred wraps" "255.255.255.255" (Ipv4.to_string (Ipv4.pred Ipv4.zero));
  check_str "succ" "1.2.3.5" (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "1.2.3.4")))

let test_add () =
  check_str "add 256" "1.2.4.3" (Ipv4.to_string (Ipv4.add (Ipv4.of_string "1.2.3.3") 256))

let test_bit () =
  let a = Ipv4.of_string "128.0.0.1" in
  check_bool "msb" true (Ipv4.bit a 0);
  check_bool "bit1" false (Ipv4.bit a 1);
  check_bool "lsb" true (Ipv4.bit a 31)

let test_of_int_masks () =
  check_int "mask" 0 (Ipv4.to_int (Ipv4.of_int 0x1_0000_0000))

let suite =
  ( "ipv4",
    [
      Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "octets" `Quick test_octets;
      Alcotest.test_case "parser rejects malformed" `Quick test_parse_rejects;
      Alcotest.test_case "parser tolerates leading zeros" `Quick
        test_parse_accepts_leading_zero;
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "succ/pred wrap" `Quick test_succ_pred_wrap;
      Alcotest.test_case "add" `Quick test_add;
      Alcotest.test_case "bit extraction" `Quick test_bit;
      Alcotest.test_case "of_int masks to 32 bits" `Quick test_of_int_masks;
    ] )
