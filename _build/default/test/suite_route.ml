open Netaddr
open Bgp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let prefix = Prefix.of_string "20.0.0.0/16"
let nh = Ipv4.of_string "10.0.0.1"

let test_defaults () =
  let r = Route.make ~prefix ~next_hop:nh () in
  check_int "path id" 0 r.Route.path_id;
  check_int "local pref" Route.default_local_pref r.Route.local_pref;
  check_bool "origin" true (r.Route.origin = Origin.Igp);
  check_bool "no med" true (r.Route.med = None);
  check_bool "empty path" true (As_path.equal r.Route.as_path As_path.empty);
  check_bool "no reflection" true
    (r.Route.originator_id = None && r.Route.cluster_list = [])

let test_reflected_marker () =
  let r = Route.make ~prefix ~next_hop:nh () in
  check_bool "initially unmarked" false (Route.is_reflected r);
  let r' = Route.mark_reflected r in
  check_bool "marked" true (Route.is_reflected r');
  let r'' = Route.mark_reflected r' in
  check_int "idempotent" 1 (List.length r''.Route.ext_communities)

let test_cluster_list () =
  let c1 = Ipv4.of_string "192.168.0.1" and c2 = Ipv4.of_string "192.168.0.2" in
  let r = Route.make ~prefix ~next_hop:nh () in
  let r = Route.add_cluster c2 (Route.add_cluster c1 r) in
  (* most recent cluster is prepended *)
  check_bool "order" true (r.Route.cluster_list = [ c2; c1 ]);
  check_bool "member" true (Route.in_cluster_list c1 r);
  check_bool "non-member" false
    (Route.in_cluster_list (Ipv4.of_string "192.168.0.9") r)

let test_neighbor_as () =
  let r =
    Route.make ~as_path:(As_path.of_asns [ Asn.of_int 5; Asn.of_int 6 ]) ~prefix
      ~next_hop:nh ()
  in
  check_bool "first as" true (Route.neighbor_as r = Some (Asn.of_int 5));
  let local = Route.make ~prefix ~next_hop:nh () in
  check_bool "local none" true (Route.neighbor_as local = None)

let test_same_path_ignores_path_id () =
  let r = Route.make ~med:(Some 5) ~prefix ~next_hop:nh () in
  let r' = Route.with_path_id 7 r in
  check_bool "same path" true (Route.same_path r r');
  check_bool "not equal" false (Route.equal r r');
  let r'' = { r with Route.med = Some 6 } in
  check_bool "different med" false (Route.same_path r r'')

let test_with_prefix () =
  let r = Route.make ~prefix ~next_hop:nh () in
  let q = Prefix.of_string "30.0.0.0/8" in
  check_bool "replaced" true (Prefix.equal (Route.with_prefix q r).Route.prefix q)

let test_compare_total_order () =
  let r1 = Route.make ~prefix ~next_hop:nh () in
  let r2 = Route.make ~med:(Some 1) ~prefix ~next_hop:nh () in
  check_bool "reflexive" true (Route.compare r1 r1 = 0);
  check_bool "antisym" true (Route.compare r1 r2 = -Route.compare r2 r1)

let suite =
  ( "route",
    [
      Alcotest.test_case "defaults" `Quick test_defaults;
      Alcotest.test_case "reflected marker" `Quick test_reflected_marker;
      Alcotest.test_case "cluster list" `Quick test_cluster_list;
      Alcotest.test_case "neighbor AS" `Quick test_neighbor_as;
      Alcotest.test_case "same_path vs equal" `Quick test_same_path_ignores_path_id;
      Alcotest.test_case "with_prefix" `Quick test_with_prefix;
      Alcotest.test_case "compare" `Quick test_compare_total_order;
    ] )
