module T = Topo.Isp_topo
module C = Abrr_core.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let topo = T.generate (T.spec ~pops:6 ~routers_per_pop:6 ~peer_ases:8 ~peering_points_per_as:4 ())

let test_shape () =
  check_int "routers" 36 topo.T.n_routers;
  check_int "clusters" 6 (List.length topo.T.clusters);
  check_int "peering routers" 6 (List.length topo.T.peering_routers);
  check_int "sessions" 32 (List.length topo.T.sessions);
  check_bool "igp connected" true (Igp.Spf.connected topo.T.igp)

let test_clusters_partition_routers () =
  let in_cluster =
    List.concat_map
      (fun (c : C.cluster) -> c.C.trrs @ c.C.clients)
      topo.T.clusters
  in
  check_int "every router placed" topo.T.n_routers (List.length in_cluster);
  check_int "no duplicates" topo.T.n_routers
    (List.length (List.sort_uniq Int.compare in_cluster))

let test_intra_pop_closer () =
  (* clients are IGP-closer to their own TRRs than to other clusters' *)
  let dist = Igp.Spf.all_pairs topo.T.igp in
  List.iter
    (fun (c : C.cluster) ->
      List.iter
        (fun client ->
          let own = List.fold_left (fun acc t -> min acc dist.(client).(t)) max_int c.C.trrs in
          List.iter
            (fun (c' : C.cluster) ->
              if c' != c then
                List.iter
                  (fun t' ->
                    check_bool "own TRR closer" true (own < dist.(client).(t')))
                  c'.C.trrs)
            topo.T.clusters)
        c.C.clients)
    topo.T.clusters

let test_peer_sessions_diverse () =
  (* each peer AS's peering points are in distinct PoPs *)
  List.iter
    (fun k ->
      let asn = T.peer_asn k in
      let pops =
        List.map (fun (s : T.session) -> topo.T.pop_of.(s.T.router))
          (T.sessions_of_as topo asn)
      in
      check_int (Printf.sprintf "AS %d diverse" k) (List.length pops)
        (List.length (List.sort_uniq Int.compare pops)))
    [ 0; 1; 2; 3 ]

let test_abrr_assignment () =
  let arrs = T.abrr_arrs topo ~aps:8 ~arrs_per_ap:2 in
  check_int "aps" 8 (Array.length arrs);
  Array.iter (fun l -> check_int "redundancy" 2 (List.length l)) arrs;
  (* ARRs are access routers, never peering routers *)
  Array.iter
    (fun l ->
      List.iter
        (fun r ->
          check_bool "not peering" false (List.mem r topo.T.peering_routers))
        l)
    arrs;
  (* with a large enough pool, assignments are disjoint across APs *)
  let all = Array.to_list arrs |> List.concat in
  check_int "disjoint" (List.length all)
    (List.length (List.sort_uniq Int.compare all))

let test_schemes_validate () =
  let check scheme =
    let cfg = T.config ~scheme topo in
    match C.validate cfg with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid config: %s" e
  in
  check (T.tbrr_scheme topo);
  check (T.tbrr_scheme ~multipath:true topo);
  check (T.abrr_scheme ~aps:4 ~arrs_per_ap:2 topo);
  check (T.abrr_scheme ~aps:16 ~arrs_per_ap:2 topo)

let test_spec_validation () =
  check_bool "rejects tiny pops" true
    (try ignore (T.spec ~pops:0 ()); false with Invalid_argument _ -> true);
  check_bool "rejects no peers" true
    (try ignore (T.spec ~peer_ases:0 ()); false with Invalid_argument _ -> true)

let suite =
  ( "isp-topo",
    [
      Alcotest.test_case "shape" `Quick test_shape;
      Alcotest.test_case "clusters partition routers" `Quick
        test_clusters_partition_routers;
      Alcotest.test_case "clients closest to own TRRs" `Quick test_intra_pop_closer;
      Alcotest.test_case "peering geographically diverse" `Quick
        test_peer_sessions_diverse;
      Alcotest.test_case "ABRR assignment" `Quick test_abrr_assignment;
      Alcotest.test_case "generated configs validate" `Quick test_schemes_validate;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
    ] )
