module M = Analysis.Model

let check_bool = Alcotest.(check bool)
let close ?(eps = 1e-6) a b = Float.abs (a -. b) < eps
let check_close name a b = check_bool name true (close a b)

let p = M.params ~prefixes:400_000 ~groups:50 ~rrs_per_group:2 ~bal:10. ()

let test_abrr_formulas () =
  (* S_m = BAL * P / k ; S_u = redundancy * P * (1 - 1/k) *)
  check_close "managed" 80_000. (M.abrr_rib_in_managed p);
  check_close "unmanaged" 784_000. (M.abrr_rib_in_unmanaged p);
  check_close "total" 864_000. (M.abrr_rib_in p);
  check_close "out = managed" (M.abrr_rib_in_managed p) (M.abrr_rib_out p)

let test_g_function () =
  (* bal < clusters: G = BAL/k * P *)
  check_close "sparse" 80_000. (M.g p);
  (* bal >= clusters: G = P *)
  let p' = M.params ~prefixes:1000 ~groups:5 ~rrs_per_group:2 ~bal:10. () in
  check_close "capped" 1000. (M.g p')

let test_tbrr_formulas () =
  check_close "managed" 80_000. (M.tbrr_rib_in_managed p);
  check_close "unmanaged" (80_000. *. 99.) (M.tbrr_rib_in_unmanaged p);
  check_close "out" ((80_000. *. 2.) +. 320_000.) (M.tbrr_rib_out p)

let test_multi_formulas () =
  check_close "managed" (M.tbrr_rib_in_managed p) (M.multi_rib_in_managed p);
  check_close "unmanaged" (80_000. *. 99.) (M.multi_rib_in_unmanaged p);
  check_close "out" (160_000. +. (80_000. *. 99.)) (M.multi_rib_out p)

let test_paper_takeaways () =
  (* Figures 4 & 5 headline: ABRR needs substantially less memory *)
  let defaults = M.params () in
  check_bool "rib-in smaller" true (M.abrr_rib_in defaults < M.tbrr_rib_in defaults);
  check_bool "rib-out smaller" true
    (M.abrr_rib_out defaults < M.tbrr_rib_out defaults);
  check_bool "multi worst" true (M.multi_rib_in defaults >= M.tbrr_rib_in defaults)

let test_rib_out_monotone_in_aps () =
  (* Fig 5b: ARR RIB-Out shrinks steadily with #APs *)
  let out k = M.abrr_rib_out (M.params ~groups:k ()) in
  check_bool "monotone" true (out 10 > out 20 && out 20 > out 50 && out 50 > out 100)

let test_rib_in_floor () =
  (* Fig 4b: ARR RIB-In flattens to the DFZ floor as APs grow *)
  let rib_in k = M.abrr_rib_in (M.params ~groups:k ()) in
  let drop1 = rib_in 2 -. rib_in 4 in
  let drop2 = rib_in 50 -. rib_in 100 in
  check_bool "diminishing returns" true (drop1 > 10. *. Float.abs drop2)

let test_default_bal_calibration () =
  (* anchored at the paper's measurement: 10.2 at 25 peer ASes *)
  check_bool "F(25) ~ 10.2" true (Float.abs (M.default_bal 25 -. 10.2) < 0.1);
  check_bool "monotone" true (M.default_bal 5 < M.default_bal 30)

let test_sessions () =
  Alcotest.(check int) "arr sessions" 1999 (M.abrr_sessions_per_arr ~n_routers:2000);
  check_bool "client sessions" true (M.abrr_sessions_per_client p = 100);
  check_bool "tbrr client sessions" true (M.tbrr_sessions_per_client p = 2);
  check_bool "trr sessions modest" true
    (M.tbrr_sessions_per_trr ~n_routers:2000 p < 200.)

let test_params_validation () =
  check_bool "rejects" true
    (try ignore (M.params ~groups:0 ()); false with Invalid_argument _ -> true)

(* --- regression ------------------------------------------------------ *)

let test_regression_exact () =
  let fit = Analysis.Regression.linear [ (0., 1.); (1., 3.); (2., 5.) ] in
  check_close "slope" 2. fit.Analysis.Regression.slope;
  check_close "intercept" 1. fit.Analysis.Regression.intercept;
  check_close "r2" 1. fit.Analysis.Regression.r2;
  check_close "predict" 21. (Analysis.Regression.predict fit 10.)

let test_regression_noise () =
  let pts = List.init 50 (fun i ->
      let x = float_of_int i in
      (x, (0.4 *. x) +. 1. +. (if i mod 2 = 0 then 0.05 else -0.05)))
  in
  let fit = Analysis.Regression.linear pts in
  check_bool "slope close" true (Float.abs (fit.Analysis.Regression.slope -. 0.4) < 0.01);
  check_bool "good r2" true (fit.Analysis.Regression.r2 > 0.99)

let test_regression_degenerate () =
  check_bool "one point" true
    (try ignore (Analysis.Regression.linear [ (1., 1.) ]); false
     with Invalid_argument _ -> true);
  check_bool "same x" true
    (try ignore (Analysis.Regression.linear [ (1., 1.); (1., 2.) ]); false
     with Invalid_argument _ -> true)

(* --- BAL measurement -------------------------------------------------- *)

let test_bal_counts () =
  let prefix = Netaddr.Prefix.of_string "20.0.0.0/16" in
  let r asn med = Helpers.route ~asn ~med ~prefix 1 in
  let count routes =
    Analysis.Bal.best_as_level_count ~med_mode:Bgp.Decision.Per_neighbor_as routes
  in
  Alcotest.(check int) "empty" 0 (count []);
  Alcotest.(check int) "single" 1 (count [ r 100 0 ]);
  (* same AS: MED discriminates; different AS: both kept *)
  Alcotest.(check int) "med kill" 1 (count [ r 100 0; r 100 5 ]);
  Alcotest.(check int) "cross as" 2 (count [ r 100 0; r 200 5 ]);
  let avg =
    Analysis.Bal.average ~med_mode:Bgp.Decision.Per_neighbor_as
      [ (prefix, [ r 100 0 ]); (prefix, [ r 100 0; r 200 5 ]); (prefix, []) ]
  in
  check_close "average skips empty" 1.5 avg

let suite =
  ( "analysis",
    [
      Alcotest.test_case "ABRR formulas (A.1)" `Quick test_abrr_formulas;
      Alcotest.test_case "G function (A.2)" `Quick test_g_function;
      Alcotest.test_case "TBRR formulas (A.2)" `Quick test_tbrr_formulas;
      Alcotest.test_case "multi-path formulas (A.3)" `Quick test_multi_formulas;
      Alcotest.test_case "paper takeaways" `Quick test_paper_takeaways;
      Alcotest.test_case "RIB-Out monotone in APs" `Quick test_rib_out_monotone_in_aps;
      Alcotest.test_case "RIB-In diminishing returns" `Quick test_rib_in_floor;
      Alcotest.test_case "F(#PAS) calibration" `Quick test_default_bal_calibration;
      Alcotest.test_case "session counts" `Quick test_sessions;
      Alcotest.test_case "params validation" `Quick test_params_validation;
      Alcotest.test_case "regression exact" `Quick test_regression_exact;
      Alcotest.test_case "regression noisy" `Quick test_regression_noise;
      Alcotest.test_case "regression degenerate" `Quick test_regression_degenerate;
      Alcotest.test_case "best-AS-level counting" `Quick test_bal_counts;
    ] )
