test/suite_metrics.ml: Alcotest Array Float List Metrics QCheck QCheck_alcotest String
