test/suite_rib.ml: Alcotest Bgp Gen Ipv4 List Netaddr Prefix QCheck QCheck_alcotest Rib Route
