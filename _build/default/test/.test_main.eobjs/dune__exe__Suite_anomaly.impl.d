test/suite_anomaly.ml: Abrr_core Alcotest Bgp List Option Printf
