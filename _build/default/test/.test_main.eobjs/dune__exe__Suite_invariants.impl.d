test/suite_invariants.ml: Abrr_core Alcotest Analysis Array Bgp Eventsim Helpers Lazy List Netaddr Topo
