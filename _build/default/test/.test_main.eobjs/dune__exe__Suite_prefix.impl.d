test/suite_prefix.ml: Alcotest Ipv4 List Netaddr Prefix QCheck QCheck_alcotest String
