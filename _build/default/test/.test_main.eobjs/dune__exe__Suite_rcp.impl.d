test/suite_rcp.ml: Abrr_core Alcotest Bgp Helpers Igp List Option Printf Result
