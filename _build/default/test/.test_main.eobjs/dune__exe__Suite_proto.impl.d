test/suite_proto.ml: Abrr_core Alcotest Bgp Int Ipv4 List Netaddr Prefix
