test/suite_trie.ml: Alcotest Gen Int Ipv4 List Netaddr Prefix Prefix_trie QCheck QCheck_alcotest
