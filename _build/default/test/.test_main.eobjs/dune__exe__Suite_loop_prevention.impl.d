test/suite_loop_prevention.ml: Abrr_core Alcotest Bgp Helpers List
