test/suite_decision.ml: Alcotest As_path Asn Bgp Decision Gen Ipv4 List Netaddr Origin Prefix QCheck QCheck_alcotest Route
