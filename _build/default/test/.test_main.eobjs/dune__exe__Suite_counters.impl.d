test/suite_counters.ml: Abrr_core Alcotest Eventsim
