test/suite_ipv4.ml: Alcotest Ipv4 List Netaddr Printf
