test/suite_transition.ml: Abrr_core Alcotest Array Fun Helpers List
