test/suite_topo.ml: Abrr_core Alcotest Array Igp Int List Printf Topo
