test/suite_routegen.ml: Alcotest Analysis Array Bgp Hashtbl Int List Netaddr Printf Topo
