test/helpers.ml: Abrr_core Alcotest Bgp Eventsim Igp Ipv4 List Netaddr Option Prefix
