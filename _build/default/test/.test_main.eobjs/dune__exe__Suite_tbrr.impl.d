test/suite_tbrr.ml: Abrr_core Alcotest Bgp Helpers List Printf
