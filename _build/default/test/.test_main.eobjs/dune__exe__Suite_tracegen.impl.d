test/suite_tracegen.ml: Abrr_core Alcotest Bgp Eventsim Hashtbl Helpers List Netaddr Option Time Topo
