test/suite_failure.ml: Abrr_core Alcotest Helpers
