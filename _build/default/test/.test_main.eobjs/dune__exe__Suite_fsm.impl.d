test/suite_fsm.ml: Abrr_core Alcotest Asn Bgp Eventsim Fsm Ipv4 List Msg Netaddr
