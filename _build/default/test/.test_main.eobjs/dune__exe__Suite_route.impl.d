test/suite_route.ml: Alcotest As_path Asn Bgp Ipv4 List Netaddr Origin Prefix Route
