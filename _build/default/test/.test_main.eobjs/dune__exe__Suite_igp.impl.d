test/suite_igp.ml: Alcotest Array Gen Igp List Printf QCheck QCheck_alcotest String
