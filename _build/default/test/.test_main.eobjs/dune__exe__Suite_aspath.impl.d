test/suite_aspath.ml: Alcotest As_path Asn Bgp
