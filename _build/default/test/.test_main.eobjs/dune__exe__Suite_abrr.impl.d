test/suite_abrr.ml: Abrr_core Alcotest Bgp Helpers List Printf
