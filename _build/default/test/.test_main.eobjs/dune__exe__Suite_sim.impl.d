test/suite_sim.ml: Alcotest Buffer Eventsim List Printf Random Sim Time
