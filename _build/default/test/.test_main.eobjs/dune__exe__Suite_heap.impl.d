test/suite_heap.ml: Alcotest Int List Pqueue QCheck QCheck_alcotest
