test/suite_fullmesh.ml: Abrr_core Alcotest Helpers List Printf
