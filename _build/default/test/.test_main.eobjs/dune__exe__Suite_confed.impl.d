test/suite_confed.ml: Abrr_core Alcotest Bgp Helpers List Printf Result
