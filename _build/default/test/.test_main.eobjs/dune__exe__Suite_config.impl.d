test/suite_config.ml: Abrr_core Alcotest Array Eventsim Helpers Netaddr
