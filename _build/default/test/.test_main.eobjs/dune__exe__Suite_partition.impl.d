test/suite_partition.ml: Abrr_core Alcotest Array Fun Ipv4 List Netaddr Prefix QCheck QCheck_alcotest
