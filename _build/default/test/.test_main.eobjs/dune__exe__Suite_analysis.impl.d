test/suite_analysis.ml: Alcotest Analysis Bgp Float Helpers List Netaddr
