test/suite_mrt.ml: Alcotest Bgp Bytes Filename Fun Helpers List Netaddr Result Sys Topo
