test/suite_pathid.ml: Abrr_core Alcotest Bgp Gen Int Ipv4 List Netaddr Prefix QCheck QCheck_alcotest
