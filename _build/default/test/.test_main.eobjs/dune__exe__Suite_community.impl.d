test/suite_community.ml: Alcotest Asn Bgp Community Ext_community List Origin
