test/suite_equivalence.ml: Abrr_core Alcotest Array Bgp Fun Helpers List Netaddr Option Printf QCheck QCheck_alcotest Random
