test/suite_wire.ml: Alcotest As_path Asn Bgp Bytes Char Community Ext_community Gen Hashtbl Ipv4 List Msg Netaddr Option Prefix Printf QCheck QCheck_alcotest Result Route Wire
