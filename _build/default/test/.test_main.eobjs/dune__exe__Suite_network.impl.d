test/suite_network.ml: Abrr_core Alcotest Eventsim Helpers Igp List Netaddr
