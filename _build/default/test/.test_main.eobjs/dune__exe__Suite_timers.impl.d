test/suite_timers.ml: Abrr_core Alcotest Bgp Eventsim Helpers Printf Time
