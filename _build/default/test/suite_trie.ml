open Netaddr

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

let test_empty () =
  check_bool "empty" true (Prefix_trie.is_empty Prefix_trie.empty);
  check_int "cardinal" 0 (Prefix_trie.cardinal Prefix_trie.empty);
  check_bool "find" true (Prefix_trie.find (p "1.0.0.0/8") Prefix_trie.empty = None)

let sample =
  [
    (p "0.0.0.0/0", "default");
    (p "10.0.0.0/8", "ten");
    (p "10.0.0.0/16", "ten-zero");
    (p "10.1.0.0/16", "ten-one");
    (p "10.1.2.0/24", "deep");
    (p "192.168.0.0/16", "rfc1918");
    (p "255.255.255.255/32", "host");
  ]

let trie = Prefix_trie.of_list sample

let test_find_exact () =
  List.iter
    (fun (q, v) ->
      check_bool (Prefix.to_string q) true (Prefix_trie.find q trie = Some v))
    sample;
  check_bool "absent" true (Prefix_trie.find (p "10.2.0.0/16") trie = None);
  check_bool "absent parent" true (Prefix_trie.find (p "10.1.0.0/12") trie = None)

let test_longest_match () =
  let lm a =
    match Prefix_trie.longest_match (Ipv4.of_string a) trie with
    | Some (_, v) -> v
    | None -> "none"
  in
  check_bool "deep" true (lm "10.1.2.3" = "deep");
  check_bool "mid" true (lm "10.1.3.1" = "ten-one");
  check_bool "eight" true (lm "10.99.0.1" = "ten");
  check_bool "default" true (lm "9.9.9.9" = "default");
  check_bool "host" true (lm "255.255.255.255" = "host")

let test_matches_order () =
  let ms = Prefix_trie.matches (Ipv4.of_string "10.1.2.3") trie in
  let names = List.map snd ms in
  check_bool "most specific first" true
    (names = [ "deep"; "ten-one"; "ten"; "default" ])

let test_remove () =
  let t = Prefix_trie.remove (p "10.1.0.0/16") trie in
  check_int "cardinal" (List.length sample - 1) (Prefix_trie.cardinal t);
  check_bool "gone" true (Prefix_trie.find (p "10.1.0.0/16") t = None);
  check_bool "child kept" true (Prefix_trie.find (p "10.1.2.0/24") t <> None);
  let lm =
    match Prefix_trie.longest_match (Ipv4.of_string "10.1.3.1") t with
    | Some (_, v) -> v
    | None -> "none"
  in
  check_bool "falls back to /8" true (lm = "ten")

let test_covered () =
  let under = Prefix_trie.covered (p "10.0.0.0/8") trie in
  check_int "count" 4 (List.length under);
  let incr_order =
    let rec ok = function
      | (a, _) :: ((b, _) :: _ as rest) -> Prefix.compare a b < 0 && ok rest
      | _ -> true
    in
    ok under
  in
  check_bool "sorted" true incr_order

let test_replace_and_update () =
  let t = Prefix_trie.add (p "10.0.0.0/8") "newval" trie in
  check_int "no growth" (List.length sample) (Prefix_trie.cardinal t);
  check_bool "replaced" true (Prefix_trie.find (p "10.0.0.0/8") t = Some "newval");
  let t2 =
    Prefix_trie.update (p "10.0.0.0/8")
      (function Some _ -> None | None -> Some "x")
      t
  in
  check_bool "update-removed" true (Prefix_trie.find (p "10.0.0.0/8") t2 = None)

let test_to_list_sorted () =
  let l = Prefix_trie.to_list trie in
  check_int "length" (List.length sample) (List.length l);
  let sorted = List.sort (fun (a, _) (b, _) -> Prefix.compare a b) sample in
  check_bool "order" true (List.map fst l = List.map fst sorted)

(* Random prefix generator for property tests. *)
let arb_prefix =
  QCheck.map
    (fun (a, len) -> Prefix.make (Ipv4.of_int a) len)
    QCheck.(pair (int_bound 0x3FFF_FFFF) (int_bound 32))

let prop_model_find =
  QCheck.Test.make ~name:"trie agrees with assoc-list model" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (pair arb_prefix small_int))
    (fun bindings ->
      let t = Prefix_trie.of_list bindings in
      (* last binding wins in both models *)
      let model =
        List.fold_left (fun acc (k, v) -> (Prefix.to_key k, v) :: acc) [] bindings
      in
      List.for_all
        (fun (k, _) ->
          let expected = List.assoc_opt (Prefix.to_key k) model in
          Prefix_trie.find k t = expected)
        bindings)

let prop_longest_match_is_most_specific =
  QCheck.Test.make ~name:"longest_match maximises length among matches" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (pair arb_prefix small_int))
        (int_bound 0x3FFF_FFFF))
    (fun (bindings, a) ->
      let addr = Ipv4.of_int a in
      let t = Prefix_trie.of_list bindings in
      let matching =
        List.filter (fun (k, _) -> Prefix.mem addr k) (Prefix_trie.to_list t)
      in
      match Prefix_trie.longest_match addr t with
      | None -> matching = []
      | Some (k, _) ->
        List.for_all (fun (k', _) -> Prefix.len k' <= Prefix.len k) matching)

let prop_remove_all_empties =
  QCheck.Test.make ~name:"removing all keys empties the trie" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (pair arb_prefix small_int))
    (fun bindings ->
      let t = Prefix_trie.of_list bindings in
      let t' =
        List.fold_left (fun t (k, _) -> Prefix_trie.remove k t) t bindings
      in
      Prefix_trie.is_empty t')

let prop_cardinal_distinct_keys =
  QCheck.Test.make ~name:"cardinal counts distinct keys" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (pair arb_prefix small_int))
    (fun bindings ->
      let t = Prefix_trie.of_list bindings in
      let distinct =
        List.sort_uniq Int.compare (List.map (fun (k, _) -> Prefix.to_key k) bindings)
      in
      Prefix_trie.cardinal t = List.length distinct)

let suite =
  ( "prefix-trie",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "find exact" `Quick test_find_exact;
      Alcotest.test_case "longest match" `Quick test_longest_match;
      Alcotest.test_case "matches most-specific-first" `Quick test_matches_order;
      Alcotest.test_case "remove keeps children" `Quick test_remove;
      Alcotest.test_case "covered subtree" `Quick test_covered;
      Alcotest.test_case "replace and update" `Quick test_replace_and_update;
      Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
      QCheck_alcotest.to_alcotest prop_model_find;
      QCheck_alcotest.to_alcotest prop_longest_match_is_most_specific;
      QCheck_alcotest.to_alcotest prop_remove_all_empties;
      QCheck_alcotest.to_alcotest prop_cardinal_distinct_keys;
    ] )
