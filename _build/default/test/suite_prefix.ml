open Netaddr

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

let test_canonical () =
  (* host bits are zeroed *)
  let q = Prefix.make (Ipv4.of_string "10.1.2.3") 16 in
  check_str "canonical" "10.1.0.0/16" (Prefix.to_string q)

let test_parse () =
  check_str "roundtrip" "192.168.0.0/24" (Prefix.to_string (p "192.168.0.0/24"));
  check_bool "reject len" true (Prefix.of_string_opt "1.2.3.4/33" = None);
  check_bool "reject no slash" true (Prefix.of_string_opt "1.2.3.4" = None);
  check_bool "reject garbage" true (Prefix.of_string_opt "1.2.3.4/x" = None)

let test_mem () =
  let q = p "10.1.0.0/16" in
  check_bool "inside" true (Prefix.mem (Ipv4.of_string "10.1.200.7") q);
  check_bool "outside" false (Prefix.mem (Ipv4.of_string "10.2.0.0") q);
  check_bool "default matches all" true
    (Prefix.mem (Ipv4.of_string "250.1.2.3") Prefix.default)

let test_subsumes () =
  check_bool "parent" true (Prefix.subsumes (p "10.0.0.0/8") (p "10.1.0.0/16"));
  check_bool "self" true (Prefix.subsumes (p "10.0.0.0/8") (p "10.0.0.0/8"));
  check_bool "child not parent" false
    (Prefix.subsumes (p "10.1.0.0/16") (p "10.0.0.0/8"));
  check_bool "sibling" false (Prefix.subsumes (p "10.0.0.0/16") (p "10.1.0.0/16"))

let test_overlaps () =
  check_bool "nested" true (Prefix.overlaps (p "10.0.0.0/8") (p "10.5.0.0/16"));
  check_bool "disjoint" false (Prefix.overlaps (p "10.0.0.0/16") (p "10.1.0.0/16"))

let test_first_last_size () =
  let q = p "10.1.0.0/16" in
  check_str "first" "10.1.0.0" (Ipv4.to_string (Prefix.first q));
  check_str "last" "10.1.255.255" (Ipv4.to_string (Prefix.last q));
  check_int "size" 65536 (Prefix.size q);
  check_int "host size" 1 (Prefix.size (Prefix.host (Ipv4.of_string "1.2.3.4")))

let test_split () =
  let l, r = Prefix.split (p "10.0.0.0/8") in
  check_str "left" "10.0.0.0/9" (Prefix.to_string l);
  check_str "right" "10.128.0.0/9" (Prefix.to_string r);
  check_bool "cannot split host" true
    (try
       ignore (Prefix.split (Prefix.host Ipv4.zero));
       false
     with Invalid_argument _ -> true)

let test_key_roundtrip () =
  List.iter
    (fun s ->
      let q = p s in
      check_bool s true (Prefix.equal q (Prefix.of_key (Prefix.to_key q))))
    [ "0.0.0.0/0"; "10.0.0.0/8"; "255.255.255.255/32"; "128.0.0.0/1" ]

let test_compare_order () =
  let sorted =
    List.sort Prefix.compare [ p "10.1.0.0/16"; p "10.0.0.0/8"; p "9.0.0.0/8" ]
  in
  check_str "order" "9.0.0.0/8 10.0.0.0/8 10.1.0.0/16"
    (String.concat " " (List.map Prefix.to_string sorted))

let prop_split_partitions =
  QCheck.Test.make ~name:"split partitions parent" ~count:200
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 30))
    (fun (a, len) ->
      let parent = Prefix.make (Ipv4.of_int (a * 131)) len in
      let l, r = Prefix.split parent in
      Prefix.size l + Prefix.size r = Prefix.size parent
      && Prefix.subsumes parent l && Prefix.subsumes parent r
      && not (Prefix.overlaps l r))

let suite =
  ( "prefix",
    [
      Alcotest.test_case "canonical form" `Quick test_canonical;
      Alcotest.test_case "parse" `Quick test_parse;
      Alcotest.test_case "mem" `Quick test_mem;
      Alcotest.test_case "subsumes" `Quick test_subsumes;
      Alcotest.test_case "overlaps" `Quick test_overlaps;
      Alcotest.test_case "first/last/size" `Quick test_first_last_size;
      Alcotest.test_case "split" `Quick test_split;
      Alcotest.test_case "key roundtrip" `Quick test_key_roundtrip;
      Alcotest.test_case "compare order" `Quick test_compare_order;
      QCheck_alcotest.to_alcotest prop_split_partitions;
    ] )
