(** Measuring #BAL — the average number of best AS-level routes per
    prefix (§3.1, Figure 3) — over a collection of route tables. *)

open Netaddr

val best_as_level_count :
  med_mode:Bgp.Decision.med_mode -> Bgp.Route.t list -> int
(** Survivors of decision steps 1-4 among the given routes for one
    prefix. 0 for the empty list. *)

val average :
  ?count_empty:bool ->
  med_mode:Bgp.Decision.med_mode ->
  (Prefix.t * Bgp.Route.t list) list ->
  float
(** Mean best-AS-level count. By default prefixes with no routes are
    skipped; with [count_empty] they contribute 0 (the Figure 3 curves
    average over the full prefix set). *)
