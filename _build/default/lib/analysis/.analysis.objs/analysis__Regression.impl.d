lib/analysis/regression.ml: Float Format List
