lib/analysis/model.mli:
