lib/analysis/bal.mli: Bgp Netaddr Prefix
