lib/analysis/regression.mli: Format
