lib/analysis/bal.ml: Bgp List Netaddr Prefix
