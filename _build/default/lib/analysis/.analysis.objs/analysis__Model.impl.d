lib/analysis/model.ml:
