type params = { prefixes : int; groups : int; rrs_per_group : int; bal : float }

(* Linear fit to the "All Sources" curve of Fig. 3, anchored at the
   paper's measured point F(25) = 10.2 and roughly one AS-level route for
   a stub network with a single peer. *)
let default_bal pas = 1.0 +. (0.368 *. float_of_int pas)

let params ?(prefixes = 400_000) ?(groups = 50) ?(rrs_per_group = 2)
    ?(bal = default_bal 30) () =
  if prefixes < 0 || groups < 1 || rrs_per_group < 1 || bal < 0. then
    invalid_arg "Model.params: nonsensical parameters";
  { prefixes; groups; rrs_per_group; bal }

let fl = float_of_int

(* --- ABRR (A.1) ---------------------------------------------------- *)

let abrr_rib_in_managed p = p.bal *. fl p.prefixes /. fl p.groups

let abrr_rib_in_unmanaged p =
  fl p.rrs_per_group *. fl p.prefixes *. (1. -. (1. /. fl p.groups))

let abrr_rib_in p = abrr_rib_in_managed p +. abrr_rib_in_unmanaged p
let abrr_rib_out p = abrr_rib_in_managed p

(* --- Single-path TBRR (A.2) ---------------------------------------- *)

let tbrr_rib_in_managed p = p.bal /. fl p.groups *. fl p.prefixes

let g p =
  if p.bal < fl p.groups then p.bal /. fl p.groups *. fl p.prefixes
  else fl p.prefixes

let total_rrs p = p.groups * p.rrs_per_group
let tbrr_rib_in_unmanaged p = g p *. fl (total_rrs p - 1)
let tbrr_rib_in p = tbrr_rib_in_managed p +. tbrr_rib_in_unmanaged p
let tbrr_rib_out p = (g p *. 2.) +. (fl p.prefixes -. g p)

(* --- Multi-path TBRR (A.3) ----------------------------------------- *)

let multi_rib_in_managed = tbrr_rib_in_managed
let multi_rib_in_unmanaged p = multi_rib_in_managed p *. fl (total_rrs p - 1)
let multi_rib_in p = multi_rib_in_managed p +. multi_rib_in_unmanaged p
let multi_rib_out p = (multi_rib_in_managed p *. 2.) +. multi_rib_in_unmanaged p

(* --- Sessions (§3.3) ------------------------------------------------ *)

let abrr_sessions_per_arr ~n_routers = n_routers - 1

let tbrr_sessions_per_trr ~n_routers p =
  (* clients spread evenly over clusters, plus the TRR full mesh *)
  let clients_per_cluster = fl (n_routers - total_rrs p) /. fl p.groups in
  clients_per_cluster +. fl (total_rrs p - 1)

let abrr_sessions_per_client p = p.groups * p.rrs_per_group
let tbrr_sessions_per_client p = p.rrs_per_group
