open Netaddr

let best_as_level_count ~med_mode routes =
  match routes with
  | [] -> 0
  | _ ->
    let cands = List.map (fun r -> Bgp.Decision.candidate r) routes in
    List.length (Bgp.Decision.steps_1_to_4 ~med_mode cands)

let average ?(count_empty = false) ~med_mode tables =
  let counts =
    List.filter_map
      (fun ((_ : Prefix.t), routes) ->
        match routes with
        | [] -> if count_empty then Some 0 else None
        | _ -> Some (best_as_level_count ~med_mode routes))
      tables
  in
  match counts with
  | [] -> 0.
  | _ ->
    float_of_int (List.fold_left ( + ) 0 counts) /. float_of_int (List.length counts)
