(** Least-squares fitting, used to derive the F(#PASs) regression line of
    §3.1 from measured best-AS-level route counts. *)

type fit = { slope : float; intercept : float; r2 : float }

val linear : (float * float) list -> fit
(** Ordinary least squares y = slope * x + intercept.
    @raise Invalid_argument with fewer than two distinct x values. *)

val predict : fit -> float -> float
val pp : Format.formatter -> fit -> unit
