(** Appendix A closed-form RIB-size models for ABRR, single-path TBRR and
    multi-path TBRR. All sizes are entry counts (routes, not prefixes). *)

type params = {
  prefixes : int;  (** #Prefixes *)
  groups : int;  (** #APs (ABRR) or #Clusters (TBRR) *)
  rrs_per_group : int;  (** redundant ARRs per AP / TRRs per cluster *)
  bal : float;  (** #BAL: average best AS-level routes per prefix *)
}

val params :
  ?prefixes:int -> ?groups:int -> ?rrs_per_group:int -> ?bal:float -> unit -> params
(** Paper defaults: 400K prefixes, 50 groups, 2 RRs per group, and
    [bal = default_bal 30] (30 peer ASes). *)

val default_bal : int -> float
(** The regression line F(#PASs) of §3.1 fitted to the "All Sources"
    curve; calibrated so that F(25) = 10.2, the measured Tier-1 value. *)

(** {1 ABRR (A.1)} *)

val abrr_rib_in_managed : params -> float
val abrr_rib_in_unmanaged : params -> float
val abrr_rib_in : params -> float
val abrr_rib_out : params -> float

(** {1 Single-path TBRR (A.2)} *)

val g : params -> float
(** The G function: routes a TRR advertises to another TRR. *)

val tbrr_rib_in_managed : params -> float
val tbrr_rib_in_unmanaged : params -> float
val tbrr_rib_in : params -> float
val tbrr_rib_out : params -> float

(** {1 Multi-path TBRR (A.3)} *)

val multi_rib_in_managed : params -> float
val multi_rib_in_unmanaged : params -> float
val multi_rib_in : params -> float
val multi_rib_out : params -> float

(** {1 Session counts (§3.3)} *)

val abrr_sessions_per_arr : n_routers:int -> int
val tbrr_sessions_per_trr : n_routers:int -> params -> float
val abrr_sessions_per_client : params -> int
val tbrr_sessions_per_client : params -> int
