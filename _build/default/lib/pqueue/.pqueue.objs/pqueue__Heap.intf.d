lib/pqueue/heap.mli:
