lib/pqueue/heap.ml: Array List
