(** Address Partitions (APs, §2.1): contiguous address ranges, each served
    by one or more ARRs. A prefix belongs to every AP its address range
    overlaps (a prefix spanning an AP boundary is advertised to the ARRs
    of all spanned APs). *)

open Netaddr

type t

val uniform : int -> t
(** [uniform k] splits the IPv4 space into [k] equal-width contiguous
    ranges (the configuration of §4's experiments).
    @raise Invalid_argument if [k < 1]. *)

val of_bounds : Ipv4.t list -> t
(** Explicit lower bounds; the first must be 0.0.0.0, bounds strictly
    increasing. Range [i] spans [bound i, bound (i+1)).
    @raise Invalid_argument on malformed input. *)

val balanced : prefixes:Prefix.t list -> int -> t
(** [balanced ~prefixes k] chooses boundaries so each AP contains roughly
    the same number of the given prefixes — the ISP knob the paper
    describes for controlling per-AP variance (§4.1). *)

val count : t -> int
(** Number of APs. *)

val bounds : t -> Ipv4.t array

val range : t -> int -> Ipv4.t * Ipv4.t
(** Inclusive [lo, hi] address range of an AP. *)

val ap_of_addr : t -> Ipv4.t -> int

val aps_of_prefix : t -> Prefix.t -> int list
(** All APs (ascending) the prefix overlaps; at least one element. *)

val prefix_in_ap : t -> int -> Prefix.t -> bool
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
