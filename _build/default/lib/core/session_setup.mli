(** §3.3: session establishment at scale. An ARR peers with every router
    in the AS — over 1000 sessions in the measured Tier-1 — and the paper
    argues boot time grows but is not critical (redundant ARRs cover the
    gap). This module measures it: a booting reflector brings up N
    sessions through the full BGP FSM (transport setup, OPEN exchange,
    capability negotiation, first KEEPALIVE), with inbound message
    processing serialized through the reflector's CPU. *)

open Eventsim

type spec = {
  sessions : int;
  rtt : Time.t;  (** round-trip to the peer *)
  per_message_cost : Time.t;  (** reflector CPU time per inbound message *)
  hold_time : int;
  add_paths : bool;
}

val spec :
  ?sessions:int ->
  ?rtt:Time.t ->
  ?per_message_cost:Time.t ->
  ?hold_time:int ->
  ?add_paths:bool ->
  unit ->
  spec
(** Defaults: 1000 sessions, 20 ms RTT, 200 us per message, hold 90 s,
    add-paths on. *)

type result = {
  boot_time : Time.t;  (** simulated time until the last session is up *)
  established : int;
  messages_processed : int;
}

val run : spec -> result
