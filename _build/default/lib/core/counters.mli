(** Per-router measurement counters, matching the paper's accounting
    (§4.2): an "update" is a per-prefix route change crossing a peering
    session or a peer-group RIB-Out; bytes are measured with the wire
    codec. *)

type t = {
  mutable updates_received : int;
      (** prefix-level changes delivered to this router over iBGP *)
  mutable updates_generated : int;
      (** prefix-level changes applied to a peer-group Adj-RIB-Out —
          the expensive operation (§3.3) *)
  mutable updates_transmitted : int;
      (** prefix-level changes sent, counted once per receiving session *)
  mutable messages_transmitted : int;
      (** wire messages sent (batched updates count once per message) *)
  mutable bytes_transmitted : int;
  mutable bytes_received : int;
  mutable withdrawals_received : int;
  mutable withdrawals_transmitted : int;
  mutable decisions_run : int;
  mutable last_change : Eventsim.Time.t;
      (** simulated time of the most recent Loc-RIB change *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (last_change = max). *)

val pp : Format.formatter -> t -> unit
