open Eventsim

type spec = {
  sessions : int;
  rtt : Time.t;
  per_message_cost : Time.t;
  hold_time : int;
  add_paths : bool;
}

let spec ?(sessions = 1000) ?(rtt = Time.ms 20) ?(per_message_cost = Time.us 200)
    ?(hold_time = 90) ?(add_paths = true) () =
  if sessions < 1 then invalid_arg "Session_setup.spec: need sessions";
  { sessions; rtt; per_message_cost; hold_time; add_paths }

type result = {
  boot_time : Time.t;
  established : int;
  messages_processed : int;
}

(* One endpoint pair per session: [local_] is the booting reflector
   (message handling serialized through a single CPU with
   [per_message_cost] per message), [remote] is the already-running
   client (responds instantly). *)
let run spec =
  let sim = Sim.create () in
  let config id =
    {
      Bgp.Fsm.local_asn = Bgp.Asn.of_int 65000;
      local_id = Netaddr.Ipv4.of_int id;
      hold_time = spec.hold_time;
      add_paths = spec.add_paths;
      connect_retry = 30;
    }
  in
  let locals = Array.init spec.sessions (fun i -> Bgp.Fsm.create (config (i + 1))) in
  let remotes =
    Array.init spec.sessions (fun i -> Bgp.Fsm.create (config (100_000 + i)))
  in
  let established = ref 0 in
  let last_established = ref Time.zero in
  let messages = ref 0 in
  (* The reflector CPU: a FIFO of thunks, each costing per_message_cost. *)
  let cpu_busy_until = ref Time.zero in
  let on_cpu work =
    let start = max (Sim.now sim) !cpu_busy_until in
    let finish = start + spec.per_message_cost in
    cpu_busy_until := finish;
    Sim.schedule_at sim ~time:finish work
  in
  let rec perform_local i actions =
    List.iter
      (fun action ->
        match action with
        | Bgp.Fsm.Send msg ->
          Sim.schedule sim ~delay:(spec.rtt / 2) (fun () ->
              deliver_remote i (Bgp.Fsm.Message msg))
        | Bgp.Fsm.Connect_transport ->
          Sim.schedule sim ~delay:spec.rtt (fun () ->
              feed_local i Bgp.Fsm.Connection_up;
              deliver_remote i Bgp.Fsm.Connection_up)
        | Bgp.Fsm.Session_established _ ->
          incr established;
          last_established := Sim.now sim
        | Bgp.Fsm.Session_down _ | Bgp.Fsm.Close_transport
        | Bgp.Fsm.Set_hold_timer _ | Bgp.Fsm.Set_keepalive_timer _
        | Bgp.Fsm.Set_connect_retry _ ->
          ())
      actions
  and feed_local i event =
    match event with
    | Bgp.Fsm.Message _ ->
      (* inbound messages contend for the reflector's CPU *)
      on_cpu (fun () ->
          incr messages;
          perform_local i (Bgp.Fsm.handle locals.(i) event))
    | _ -> perform_local i (Bgp.Fsm.handle locals.(i) event)
  and deliver_remote i event =
    List.iter
      (fun action ->
        match action with
        | Bgp.Fsm.Send msg ->
          Sim.schedule sim ~delay:(spec.rtt / 2) (fun () ->
              feed_local i (Bgp.Fsm.Message msg))
        | Bgp.Fsm.Connect_transport | Bgp.Fsm.Session_established _
        | Bgp.Fsm.Session_down _ | Bgp.Fsm.Close_transport
        | Bgp.Fsm.Set_hold_timer _ | Bgp.Fsm.Set_keepalive_timer _
        | Bgp.Fsm.Set_connect_retry _ ->
          ())
      (Bgp.Fsm.handle remotes.(i) event)
  in
  for i = 0 to spec.sessions - 1 do
    (* remotes listen passively: they are in Connect awaiting the
       transport, having been started earlier *)
    ignore (Bgp.Fsm.handle remotes.(i) Bgp.Fsm.Start);
    feed_local i Bgp.Fsm.Start
  done;
  ignore (Sim.run sim);
  {
    boot_time = !last_established;
    established = !established;
    messages_processed = !messages;
  }
