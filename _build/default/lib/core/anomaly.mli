(** Routing-anomaly detection (§2.3): oscillation and forwarding-loop
    checks over a network run. *)



type verdict = {
  outcome : Eventsim.Sim.outcome;
  events : int;  (** events processed during this check *)
  best_changes : int;  (** Loc-RIB changes network-wide *)
}

val run : ?until:Eventsim.Time.t -> ?max_events:int -> Network.t -> verdict
(** Run the network; default event budget 200,000. *)

val oscillates : verdict -> bool
(** The network failed to quiesce within its event budget — with finite
    external input and deterministic processing this is a protocol
    divergence. *)

type path_failure =
  | Loop of int list  (** the walk revisited a router ([max_hops] counts) *)
  | Blackhole of int list  (** a router on the path has no route *)

val forwarding_path :
  Network.t ->
  src:int ->
  Netaddr.Prefix.t ->
  max_hops:int ->
  (int list, path_failure) result
(** Follow BGP next hops router-by-router from [src] until the exit
    border router (the router whose best is eBGP-learned or local). *)

val forwarding_loops : Network.t -> Netaddr.Prefix.t -> int list list
(** All distinct looping forwarding paths for the prefix. Routers with
    no route (e.g. pure control-plane nodes) are blackholes, not
    loops. *)
