lib/core/partition.ml: Array Format Int Ipv4 List Netaddr Prefix
