lib/core/config.ml: Array Bgp Eventsim Format Igp Ipv4 List Netaddr Partition Time
