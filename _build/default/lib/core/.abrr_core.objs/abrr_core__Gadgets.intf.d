lib/core/gadgets.mli: Config Netaddr Network Prefix
