lib/core/gadgets.ml: Array Bgp Config Eventsim Igp Ipv4 List Netaddr Network Partition Prefix Time
