lib/core/proto.ml: Bgp Bytes Format List Netaddr Prefix
