lib/core/anomaly.ml: Bgp Config Eventsim List Network
