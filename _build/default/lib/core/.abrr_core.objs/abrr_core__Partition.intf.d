lib/core/partition.mli: Format Ipv4 Netaddr Prefix
