lib/core/counters.ml: Eventsim Format
