lib/core/proto.mli: Bgp Format Netaddr Prefix
