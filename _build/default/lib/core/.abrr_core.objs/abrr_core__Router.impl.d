lib/core/router.ml: Array Bgp Config Counters Eventsim Fun Hashtbl Igp Int Ipv4 List Netaddr Option Partition Path_id Prefix Prefix_trie Proto Queue Time
