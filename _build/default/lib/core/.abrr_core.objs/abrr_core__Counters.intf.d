lib/core/counters.mli: Eventsim Format
