lib/core/router.mli: Bgp Config Counters Eventsim Ipv4 Netaddr Prefix Proto Time
