lib/core/path_id.mli: Bgp Netaddr Prefix
