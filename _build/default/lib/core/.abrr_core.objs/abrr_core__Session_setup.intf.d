lib/core/session_setup.mli: Eventsim Time
