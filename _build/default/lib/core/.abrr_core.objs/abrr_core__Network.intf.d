lib/core/network.mli: Bgp Config Counters Eventsim Ipv4 Netaddr Prefix Router Sim Time
