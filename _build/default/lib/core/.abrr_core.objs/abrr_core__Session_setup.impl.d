lib/core/session_setup.ml: Array Bgp Eventsim List Netaddr Sim Time
