lib/core/anomaly.mli: Eventsim Netaddr Network
