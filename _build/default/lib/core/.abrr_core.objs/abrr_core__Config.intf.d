lib/core/config.mli: Bgp Eventsim Igp Ipv4 Netaddr Partition Time
