lib/core/path_id.ml: Bgp Hashtbl List Netaddr Prefix
