lib/core/network.ml: Array Bgp Config Counters Eventsim Igp List Netaddr Prefix Printf Router Sim Time
