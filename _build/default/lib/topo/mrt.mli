(** MRT trace serialisation (RFC 6396): BGP4MP_ET records with
    microsecond timestamps wrapping wire-encoded BGP UPDATE messages —
    the format the paper's route regenerator consumes.

    Router identity round-trips through the record's local IP using the
    loopback convention of {!Abrr_core.Config.loopback}. *)

val encode_events : local_as:Bgp.Asn.t -> Trace_gen.event list -> bytes

val decode_events : bytes -> (Trace_gen.event list, string) result
(** Inverse of [encode_events]: announcements and withdrawals are
    recovered with their timestamps, sessions and full attribute sets. *)

val save : string -> local_as:Bgp.Asn.t -> Trace_gen.event list -> unit
val load : string -> (Trace_gen.event list, string) result
