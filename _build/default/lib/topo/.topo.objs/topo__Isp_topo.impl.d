lib/topo/isp_topo.ml: Abrr_core Array Bgp Fun Igp Int Ipv4 List Netaddr Random
