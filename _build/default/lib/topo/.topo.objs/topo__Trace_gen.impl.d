lib/topo/trace_gen.ml: Abrr_core Array Bgp Eventsim Float Fun Hashtbl Int Ipv4 List Netaddr Prefix Random Route_gen Time
