lib/topo/mrt.mli: Bgp Trace_gen
