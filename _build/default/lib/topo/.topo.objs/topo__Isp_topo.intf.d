lib/topo/isp_topo.mli: Abrr_core Bgp Eventsim Igp Ipv4 Netaddr
