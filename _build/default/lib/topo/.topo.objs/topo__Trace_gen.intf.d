lib/topo/trace_gen.mli: Abrr_core Bgp Eventsim Ipv4 Netaddr Prefix Route_gen Time
