lib/topo/route_gen.mli: Abrr_core Bgp Ipv4 Isp_topo Netaddr Prefix
