lib/topo/route_gen.ml: Abrr_core Array Bgp Hashtbl Ipv4 Isp_topo List Netaddr Prefix Random
