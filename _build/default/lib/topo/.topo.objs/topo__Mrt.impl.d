lib/topo/mrt.ml: Abrr_core Bgp Buffer Bytes Char Format Fun Ipv4 List Netaddr Printf Trace_gen
