open Netaddr

let mrt_type_bgp4mp_et = 17
let subtype_message_as4 = 4

let w8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w16 buf v =
  w8 buf (v lsr 8);
  w8 buf v

let w32 buf v =
  w16 buf (v lsr 16);
  w16 buf (v land 0xFFFF)

let encode_record buf ~time ~local_as ~peer_as ~peer_ip ~local_ip payload =
  let sec = time / 1_000_000 and usec = time mod 1_000_000 in
  let body = Buffer.create (32 + Bytes.length payload) in
  w32 body usec;
  w32 body (Bgp.Asn.to_int peer_as);
  w32 body (Bgp.Asn.to_int local_as);
  w16 body 0 (* interface index *);
  w16 body 1 (* AFI IPv4 *);
  w32 body (Ipv4.to_int peer_ip);
  w32 body (Ipv4.to_int local_ip);
  Buffer.add_bytes body payload;
  w32 buf sec;
  w16 buf mrt_type_bgp4mp_et;
  w16 buf subtype_message_as4;
  w32 buf (Buffer.length body);
  Buffer.add_buffer buf body

let event_update (action : Trace_gen.action) =
  match action with
  | Trace_gen.Announce { route; _ } -> { Bgp.Msg.withdrawn = []; announced = [ route ] }
  | Trace_gen.Withdraw { prefix; path_id; _ } ->
    { Bgp.Msg.withdrawn = [ { Bgp.Msg.prefix; path_id } ]; announced = [] }

let encode_events ~local_as events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (ev : Trace_gen.event) ->
      let router, neighbor =
        match ev.Trace_gen.action with
        | Trace_gen.Announce { router; neighbor; _ }
        | Trace_gen.Withdraw { router; neighbor; _ } -> (router, neighbor)
      in
      let peer_as =
        match ev.Trace_gen.action with
        | Trace_gen.Announce { route; _ } -> (
          match Bgp.Route.neighbor_as route with
          | Some a -> a
          | None -> Bgp.Asn.of_int 0)
        | Trace_gen.Withdraw _ -> Bgp.Asn.of_int 0
      in
      let msgs =
        Bgp.Wire.encode ~add_paths:true
          (Bgp.Msg.Update (event_update ev.Trace_gen.action))
      in
      List.iter
        (fun payload ->
          encode_record buf ~time:ev.Trace_gen.time ~local_as ~peer_as
            ~peer_ip:neighbor
            ~local_ip:(Abrr_core.Config.loopback router)
            payload)
        msgs)
    events;
  Buffer.to_bytes buf

exception Bad of string

let decode_events data =
  let total = Bytes.length data in
  let pos = ref 0 in
  let r8 () =
    if !pos >= total then raise (Bad "truncated");
    let v = Char.code (Bytes.get data !pos) in
    incr pos;
    v
  in
  let r16 () =
    let a = r8 () in
    (a lsl 8) lor r8 ()
  in
  let r32 () =
    let a = r16 () in
    (a lsl 16) lor r16 ()
  in
  try
    let out = ref [] in
    while !pos < total do
      let sec = r32 () in
      let typ = r16 () in
      let subtype = r16 () in
      let len = r32 () in
      if typ <> mrt_type_bgp4mp_et || subtype <> subtype_message_as4 then
        raise (Bad (Printf.sprintf "unsupported record %d/%d" typ subtype));
      if !pos + len > total then raise (Bad "truncated record");
      let record_end = !pos + len in
      let usec = r32 () in
      let _peer_as = r32 () in
      let _local_as = r32 () in
      let _ifindex = r16 () in
      let afi = r16 () in
      if afi <> 1 then raise (Bad "non-IPv4 AFI");
      let peer_ip = Ipv4.of_int (r32 ()) in
      let local_ip = Ipv4.of_int (r32 ()) in
      let router = Ipv4.to_int local_ip - 0x0A00_0000 in
      if router < 0 then raise (Bad "local IP is not a loopback");
      let time = (sec * 1_000_000) + usec in
      (match Bgp.Wire.decode ~add_paths:true data ~pos:!pos with
      | Error e -> raise (Bad (Format.asprintf "%a" Bgp.Wire.pp_error e))
      | Ok (Bgp.Msg.Update u, next) ->
        if next <> record_end then raise (Bad "record length mismatch");
        List.iter
          (fun (w : Bgp.Msg.withdrawal) ->
            out :=
              {
                Trace_gen.time;
                action =
                  Trace_gen.Withdraw
                    {
                      router;
                      neighbor = peer_ip;
                      prefix = w.Bgp.Msg.prefix;
                      path_id = w.Bgp.Msg.path_id;
                    };
              }
              :: !out)
          u.Bgp.Msg.withdrawn;
        List.iter
          (fun route ->
            out :=
              {
                Trace_gen.time;
                action = Trace_gen.Announce { router; neighbor = peer_ip; route };
              }
              :: !out)
          u.Bgp.Msg.announced
      | Ok (_, _) -> raise (Bad "expected UPDATE"));
      pos := record_end
    done;
    Ok (List.rev !out)
  with Bad msg -> Error msg

let save path ~local_as events =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode_events ~local_as events))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      decode_events (Bytes.of_string data))
