(** Two-week BGP update trace generator.

    Events are {e routing events} at the granularity the paper observes:
    a peer AS changes its route to a prefix, causing near-simultaneous
    (jittered by up to ~2 s) updates at all of its peering points — the
    source of the TBRR race conditions analysed in §4.2. Prefix activity
    follows a Zipf law (a small set of unstable prefixes dominates). *)

open Netaddr
open Eventsim

type spec = {
  duration : Time.t;
  events : int;  (** number of AS-level routing events *)
  zipf_s : float;  (** popularity skew, 0 = uniform *)
  flap_share : float;  (** events that withdraw then re-announce *)
  single_point_share : float;
      (** events affecting a single peering session rather than every
          peering point of the AS *)
  jitter : Time.t;  (** spread of per-point update arrivals *)
  seed : int;
}

val spec :
  ?duration:Time.t ->
  ?events:int ->
  ?zipf_s:float ->
  ?flap_share:float ->
  ?single_point_share:float ->
  ?jitter:Time.t ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 14 days, 5000 events, skew 1.1, 30% flaps, 60% single-point
    events, 2 s jitter, seed 23. *)

type action =
  | Announce of { router : int; neighbor : Ipv4.t; route : Bgp.Route.t }
  | Withdraw of { router : int; neighbor : Ipv4.t; prefix : Prefix.t; path_id : int }

type event = { time : Time.t; action : action }

val generate : Route_gen.t -> spec -> event list
(** Time-sorted. Announce/withdraw sequences per session are consistent
    (a flap withdraws exactly what was announced, then restores it). *)

val schedule : Abrr_core.Network.t -> event list -> unit
(** Register every event with the network's simulator. *)

val action_count : event list -> int * int
(** (announcements, withdrawals). *)
