open Netaddr

type spec = {
  n_prefixes : int;
  peer_share : float;
  carry_prob : float;
  short_path_prob : float;
  med_levels : int;
  med_quantum : int;
  multihomed_customer_prob : float;
  seed : int;
}

let spec ?(n_prefixes = 2000) ?(peer_share = 0.76) ?(carry_prob = 0.7)
    ?(short_path_prob = 0.3) ?(med_levels = 3) ?(med_quantum = 10)
    ?(multihomed_customer_prob = 0.1) ?(seed = 11) () =
  if n_prefixes < 1 then invalid_arg "Route_gen.spec: need prefixes";
  let check01 name v =
    if v < 0. || v > 1. then invalid_arg ("Route_gen.spec: " ^ name ^ " not in [0,1]")
  in
  check01 "peer_share" peer_share;
  check01 "carry_prob" carry_prob;
  check01 "short_path_prob" short_path_prob;
  check01 "multihomed_customer_prob" multihomed_customer_prob;
  if med_levels < 1 || med_quantum < 1 then
    invalid_arg "Route_gen.spec: MED quantization must be positive";
  {
    n_prefixes;
    peer_share;
    carry_prob;
    short_path_prob;
    med_levels;
    med_quantum;
    multihomed_customer_prob;
    seed;
  }

type ebgp_route = { router : int; neighbor : Ipv4.t; route : Bgp.Route.t }

type t = {
  gen_spec : spec;
  prefixes : Prefix.t array;
  from_peers : bool array;
  routes : ebgp_route list array;
}

(* Prefix universe: distinct prefixes spread over the unicast space,
   avoiding the first octets reserved by our conventions: loopbacks
   (10/8), eBGP neighbours (172.16/12), cluster IDs (192.168/16) and
   127/8. *)
let gen_prefixes rng n =
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] in
  let count = ref 0 in
  while !count < n do
    let len = 16 + Random.State.int rng 9 in
    let a = 1 + Random.State.int rng 223 in
    if a <> 10 && a <> 127 && a <> 172 && a <> 192 then begin
      let addr =
        Ipv4.of_octets a (Random.State.int rng 256) (Random.State.int rng 256) 0
      in
      let p = Prefix.make addr len in
      let key = Prefix.to_key p in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := p :: !out;
        incr count
      end
    end
  done;
  Array.of_list (List.rev !out)

let origin_asn rng = Bgp.Asn.of_int (50_000 + Random.State.int rng 10_000)
let transit_asn rng = Bgp.Asn.of_int (40_000 + Random.State.int rng 5_000)
let customer_asn rng = Bgp.Asn.of_int (10_000 + Random.State.int rng 10_000)

(* A unique add-paths id per (router, prefix) pair is required; we use a
   globally unique id per eBGP session route which is stronger. *)
let generate (topo : Isp_topo.t) spec =
  let rng = Random.State.make [| spec.seed |] in
  let prefixes = gen_prefixes rng spec.n_prefixes in
  let from_peers =
    Array.init spec.n_prefixes (fun _ -> Random.State.float rng 1. < spec.peer_share)
  in
  let routes = Array.make spec.n_prefixes [] in
  let next_path_id = ref 1 in
  let fresh_id () =
    let id = !next_path_id in
    incr next_path_id;
    id
  in
  let peer_as_list =
    List.init topo.Isp_topo.spec.Isp_topo.peer_ases Isp_topo.peer_asn
  in
  let access = Array.of_list topo.Isp_topo.access_routers in
  for i = 0 to spec.n_prefixes - 1 do
    let prefix = prefixes.(i) in
    if from_peers.(i) then begin
      let origin = origin_asn rng in
      let transit = transit_asn rng in
      let entries = ref [] in
      List.iter
        (fun peer_as ->
          if Random.State.float rng 1. < spec.carry_prob then begin
            let short = Random.State.float rng 1. < spec.short_path_prob in
            let as_path =
              if short then Bgp.As_path.of_asns [ peer_as; origin ]
              else Bgp.As_path.of_asns [ peer_as; transit; origin ]
            in
            let points = Isp_topo.sessions_of_as topo peer_as in
            List.iteri
              (fun _j (s : Isp_topo.session) ->
                let med = spec.med_quantum * Random.State.int rng spec.med_levels in
                let route =
                  Bgp.Route.make ~path_id:(fresh_id ()) ~as_path
                    ~med:(Some med) ~prefix ~next_hop:s.Isp_topo.neighbor ()
                in
                entries :=
                  { router = s.Isp_topo.router; neighbor = s.Isp_topo.neighbor; route }
                  :: !entries)
              points
          end)
        peer_as_list;
      (* Guarantee at least one route per prefix. *)
      if !entries = [] then begin
        let peer_as = List.nth peer_as_list (Random.State.int rng (List.length peer_as_list)) in
        let s = List.hd (Isp_topo.sessions_of_as topo peer_as) in
        let route =
          Bgp.Route.make ~path_id:(fresh_id ())
            ~as_path:(Bgp.As_path.of_asns [ peer_as; origin ])
            ~med:(Some (spec.med_quantum * Random.State.int rng spec.med_levels))
            ~prefix ~next_hop:s.Isp_topo.neighbor ()
        in
        entries := [ { router = s.Isp_topo.router; neighbor = s.Isp_topo.neighbor; route } ]
      end;
      routes.(i) <- List.rev !entries
    end
    else begin
      (* Customer prefix: originated behind one (occasionally two) access
         routers. *)
      let cust = customer_asn rng in
      let mk () =
        let r = access.(Random.State.int rng (Array.length access)) in
        let neighbor =
          Ipv4.of_int (0xAC20_0000 + Random.State.int rng 0xFFFF)
        in
        let route =
          Bgp.Route.make ~path_id:(fresh_id ())
            ~as_path:(Bgp.As_path.of_asns [ cust ])
            ~prefix ~next_hop:neighbor ()
        in
        { router = r; neighbor; route }
      in
      let first = mk () in
      let entries =
        if Random.State.float rng 1. < spec.multihomed_customer_prob then
          [ first; mk () ]
        else [ first ]
      in
      routes.(i) <- entries
    end
  done;
  { gen_spec = spec; prefixes; from_peers; routes }

let total_routes t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.routes

let peer_prefix_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.from_peers

let inject_all t net =
  Array.iter
    (fun entries ->
      List.iter
        (fun e ->
          Abrr_core.Network.inject net ~router:e.router ~neighbor:e.neighbor e.route)
        entries)
    t.routes

let route_peer_as (r : Bgp.Route.t) = Bgp.Route.neighbor_as r

let is_peer_asn asn = Bgp.Asn.to_int asn >= 3000 && Bgp.Asn.to_int asn < 10_000

let peer_asns t =
  let set = Hashtbl.create 32 in
  Array.iter
    (fun entries ->
      List.iter
        (fun e ->
          match route_peer_as e.route with
          | Some a when is_peer_asn a -> Hashtbl.replace set (Bgp.Asn.to_int a) ()
          | Some _ | None -> ())
        entries)
    t.routes;
  Hashtbl.fold (fun a () acc -> Bgp.Asn.of_int a :: acc) set []
  |> List.sort Bgp.Asn.compare

let tables ?peer_filter ?(include_customers = true) t =
  let keep (r : Bgp.Route.t) =
    match route_peer_as r with
    | None -> include_customers
    | Some asn ->
      if is_peer_asn asn then
        match peer_filter with None -> true | Some f -> f asn
      else include_customers
  in
  let out = ref [] in
  for i = Array.length t.prefixes - 1 downto 0 do
    let routes =
      List.filter_map
        (fun e -> if keep e.route then Some e.route else None)
        t.routes.(i)
    in
    out := (t.prefixes.(i), routes) :: !out
  done;
  !out
