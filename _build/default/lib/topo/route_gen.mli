(** Synthetic route tables calibrated to the paper's Tier-1 measurements:
    ~76% of prefixes learned from peer ASes (the rest from customers),
    AS-path-length ties across several peers and shared-vs-distinct MEDs
    across peering points producing a Fig.3-like best-AS-level route
    count (≈10 per prefix at 25 peer ASes). *)

open Netaddr

type spec = {
  n_prefixes : int;
  peer_share : float;  (** fraction of prefixes learned from peer ASes *)
  carry_prob : float;  (** probability a peer AS carries a peer prefix *)
  short_path_prob : float;  (** P(a carrier advertises the short AS path) *)
  med_levels : int;
      (** MEDs are quantized to [med_quantum * k], k < med_levels; ties at
          the minimum are what produce multi-route best-AS-level sets *)
  med_quantum : int;
  multihomed_customer_prob : float;
  seed : int;
}

val spec :
  ?n_prefixes:int ->
  ?peer_share:float ->
  ?carry_prob:float ->
  ?short_path_prob:float ->
  ?med_levels:int ->
  ?med_quantum:int ->
  ?multihomed_customer_prob:float ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 2000 prefixes, 0.76 peer share, carry 0.7, short-path 0.3,
    3 MED levels of quantum 10, multihoming 0.1, seed 11 — chosen so the
    measured #BAL at 25 peer ASes lands near the paper's 10.2. *)

type ebgp_route = {
  router : int;
  neighbor : Ipv4.t;
  route : Bgp.Route.t;  (** carries a unique [path_id] per session *)
}

type t = {
  gen_spec : spec;
  prefixes : Prefix.t array;
  from_peers : bool array;  (** prefix i learned from peer ASes? *)
  routes : ebgp_route list array;  (** available eBGP routes per prefix *)
}

val generate : Isp_topo.t -> spec -> t

val total_routes : t -> int
val peer_prefix_count : t -> int

val inject_all : t -> Abrr_core.Network.t -> unit
(** Feed the initial RIB snapshot: every eBGP route injected at simulated
    time zero (the paper's route-regenerator initialisation). *)

val tables :
  ?peer_filter:(Bgp.Asn.t -> bool) ->
  ?include_customers:bool ->
  t ->
  (Prefix.t * Bgp.Route.t list) list
(** Per-prefix route lists for #BAL measurement. [peer_filter] restricts
    which peer ASes' routes are considered (Fig. 3's x-axis);
    [include_customers] adds customer/static routes ("All Sources"). *)

val peer_asns : t -> Bgp.Asn.t list
