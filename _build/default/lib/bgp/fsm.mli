(** BGP session finite-state machine (RFC 4271 §8), with capability
    negotiation for 4-byte ASNs and add-paths.

    The FSM is transport-agnostic: callers feed it events (timers,
    connection notifications, decoded messages) and it returns actions
    (messages to send, state announcements). It backs the §3.3 analysis
    of ARR session scaling — establishing thousands of sessions — and
    the boot-time experiment in the benchmark harness. *)

open Netaddr

type state =
  | Idle
  | Connect
  | Active
  | Open_sent
  | Open_confirm
  | Established

type config = {
  local_asn : Asn.t;
  local_id : Ipv4.t;
  hold_time : int;  (** proposed hold time, seconds; 0 disables keepalives *)
  add_paths : bool;  (** offer the add-paths capability *)
  connect_retry : int;  (** ConnectRetry timer, seconds *)
}

type t

type event =
  | Start  (** operator enables the session *)
  | Stop
  | Connection_up  (** transport (TCP) established *)
  | Connection_failed
  | Message of Msg.t
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired

type action =
  | Send of Msg.t
  | Connect_transport  (** open the TCP connection *)
  | Close_transport
  | Session_established of { peer_asn : Asn.t; peer_id : Ipv4.t; add_paths : bool }
      (** negotiated: add-paths is on iff both sides offered it *)
  | Session_down of string
  | Set_hold_timer of int  (** seconds; 0 cancels *)
  | Set_keepalive_timer of int
  | Set_connect_retry of int

val create : config -> t
val state : t -> state

val negotiated_add_paths : t -> bool
(** Valid once established. *)

val peer : t -> (Asn.t * Ipv4.t) option
(** Peer ASN and identifier, once OPEN has been received. *)

val handle : t -> event -> action list
(** Feed one event; returns the actions to perform, in order. The FSM
    never raises on unexpected events — protocol errors produce
    [Send (Notification _)] plus [Session_down] and a reset to Idle. *)

val pp_state : Format.formatter -> state -> unit
