lib/bgp/origin.ml: Format Int
