lib/bgp/rib.ml: Hashtbl List Netaddr Option Prefix Route
