lib/bgp/ext_community.ml: Format Int Printf
