lib/bgp/asn.ml: Format Hashtbl Int
