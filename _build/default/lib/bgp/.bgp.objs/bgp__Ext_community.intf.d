lib/bgp/ext_community.mli: Format
