lib/bgp/msg.ml: Asn Format Ipv4 Netaddr Prefix Route
