lib/bgp/as_path.ml: Asn Format Int List String
