lib/bgp/wire.ml: As_path Asn Buffer Bytes Char Community Ext_community Format Hashtbl Ipv4 List Msg Netaddr Option Origin Prefix Printf Route String
