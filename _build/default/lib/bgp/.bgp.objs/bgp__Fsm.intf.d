lib/bgp/fsm.mli: Asn Format Ipv4 Msg Netaddr
