lib/bgp/route.mli: As_path Asn Community Ext_community Format Ipv4 Netaddr Origin Prefix
