lib/bgp/decision.ml: As_path Asn Hashtbl Ipv4 List Netaddr Origin Printf Route
