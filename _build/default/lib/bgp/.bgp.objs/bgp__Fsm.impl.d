lib/bgp/fsm.ml: Asn Format Ipv4 Msg Netaddr Printf
