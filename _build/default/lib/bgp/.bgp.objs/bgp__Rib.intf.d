lib/bgp/rib.mli: Netaddr Prefix Route
