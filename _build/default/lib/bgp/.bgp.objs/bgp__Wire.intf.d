lib/bgp/wire.mli: Format Msg
