lib/bgp/origin.mli: Format
