lib/bgp/decision.mli: Ipv4 Netaddr Route
