lib/bgp/msg.mli: Asn Format Ipv4 Netaddr Prefix Route
