lib/bgp/route.ml: As_path Community Ext_community Format Int Ipv4 List Netaddr Origin Prefix
