type segment =
  | Seq of Asn.t list
  | Set of Asn.t list
  | Confed_seq of Asn.t list
  | Confed_set of Asn.t list
type t = segment list

let empty = []
let of_segments segs = segs
let segments t = t
let of_asns = function [] -> [] | asns -> [ Seq asns ]

let length t =
  let seg_len = function
    | Seq asns -> List.length asns
    | Set _ -> 1
    | Confed_seq _ | Confed_set _ -> 0
  in
  List.fold_left (fun n s -> n + seg_len s) 0 t

let prepend asn = function
  | Seq asns :: rest -> Seq (asn :: asns) :: rest
  | segs -> Seq [ asn ] :: segs

let prepend_confed asn = function
  | Confed_seq asns :: rest -> Confed_seq (asn :: asns) :: rest
  | segs -> Confed_seq [ asn ] :: segs

let strip_confed t =
  List.filter (function Confed_seq _ | Confed_set _ -> false | Seq _ | Set _ -> true) t

let confed_contains asn t =
  List.exists
    (function
      | Confed_seq asns | Confed_set asns -> List.exists (Asn.equal asn) asns
      | Seq _ | Set _ -> false)
    t

let contains asn t =
  let in_seg = function
    | Seq asns | Set asns | Confed_seq asns | Confed_set asns ->
      List.exists (Asn.equal asn) asns
  in
  List.exists in_seg t

let first_as t =
  match strip_confed t with Seq (a :: _) :: _ -> Some a | _ -> None

let origin_as t =
  let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl in
  match last (strip_confed t) with
  | Some (Seq asns) -> last asns
  | Some (Set _ | Confed_seq _ | Confed_set _) | None -> None

let seg_rank = function Seq _ -> 0 | Set _ -> 1 | Confed_seq _ -> 2 | Confed_set _ -> 3

let seg_compare a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y | Confed_seq x, Confed_seq y
  | Confed_set x, Confed_set y ->
    List.compare Asn.compare x y
  | _, _ -> Int.compare (seg_rank a) (seg_rank b)

let compare = List.compare seg_compare
let equal a b = compare a b = 0

let to_string t =
  let seg_str = function
    | Seq asns -> String.concat " " (List.map Asn.to_string asns)
    | Set asns -> "{" ^ String.concat "," (List.map Asn.to_string asns) ^ "}"
    | Confed_seq asns ->
      "(" ^ String.concat " " (List.map Asn.to_string asns) ^ ")"
    | Confed_set asns ->
      "[" ^ String.concat "," (List.map Asn.to_string asns) ^ "]"
  in
  String.concat " " (List.map seg_str t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
