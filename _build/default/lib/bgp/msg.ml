open Netaddr

type withdrawal = { prefix : Prefix.t; path_id : int }
type update = { withdrawn : withdrawal list; announced : Route.t list }

type open_params = {
  asn : Asn.t;
  hold_time : int;
  bgp_id : Ipv4.t;
  add_paths : bool;
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_params
  | Update of update
  | Keepalive
  | Notification of notification

let update ?(withdrawn = []) announced = Update { withdrawn; announced }
let empty_update = { withdrawn = []; announced = [] }
let update_is_empty u = u.withdrawn = [] && u.announced = []
let withdrawal ?(path_id = 0) prefix = { prefix; path_id }

let pp fmt = function
  | Open o ->
    Format.fprintf fmt "OPEN(as=%a id=%a hold=%d add-paths=%b)" Asn.pp o.asn
      Ipv4.pp o.bgp_id o.hold_time o.add_paths
  | Update u ->
    Format.fprintf fmt "UPDATE(withdraw=[%a] announce=[%a])"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
         (fun f w -> Format.fprintf f "%a#%d" Prefix.pp w.prefix w.path_id))
      u.withdrawn
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
         Route.pp)
      u.announced
  | Keepalive -> Format.pp_print_string fmt "KEEPALIVE"
  | Notification n ->
    Format.fprintf fmt "NOTIFICATION(code=%d subcode=%d)" n.code n.subcode
