(** Standard BGP communities (RFC 1997): 32-bit values written AS:tag. *)

type t = private int

val make : int -> int -> t
(** [make asn tag] with both in [0, 2^16). @raise Invalid_argument. *)

val of_int32_bits : int -> t
(** Raw 32-bit value (masked). *)

val to_int : t -> int
val asn : t -> int
val tag : t -> int
val no_export : t
val no_advertise : t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
