(** BGP message abstraction (RFC 4271 §4) with add-paths NLRI. *)

open Netaddr

type withdrawal = { prefix : Prefix.t; path_id : int }

type update = {
  withdrawn : withdrawal list;
  announced : Route.t list;
      (** Each route carries its own attribute set; the wire codec groups
          routes with identical attributes into shared UPDATE messages. *)
}

type open_params = {
  asn : Asn.t;
  hold_time : int;
  bgp_id : Ipv4.t;
  add_paths : bool;  (** whether the add-paths capability is offered *)
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_params
  | Update of update
  | Keepalive
  | Notification of notification

val update : ?withdrawn:withdrawal list -> Route.t list -> t
val empty_update : update
val update_is_empty : update -> bool
val withdrawal : ?path_id:int -> Prefix.t -> withdrawal
val pp : Format.formatter -> t -> unit
