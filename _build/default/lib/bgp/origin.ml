type t = Igp | Egp | Incomplete

let rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2
let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let to_code = rank
let of_code = function 0 -> Some Igp | 1 -> Some Egp | 2 -> Some Incomplete | _ -> None
let to_string = function Igp -> "IGP" | Egp -> "EGP" | Incomplete -> "INCOMPLETE"
let pp fmt t = Format.pp_print_string fmt (to_string t)
