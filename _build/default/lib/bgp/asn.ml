type t = int

let of_int n =
  if n < 0 || n > 0xFFFF_FFFF then invalid_arg "Asn.of_int: out of range";
  n

let to_int n = n
let compare = Int.compare
let equal = Int.equal
let to_string n = string_of_int n
let pp fmt n = Format.pp_print_int fmt n
let hash = Hashtbl.hash
