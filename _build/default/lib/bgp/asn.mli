(** Autonomous System Numbers (4-byte, RFC 6793). *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument if outside [0, 2^32). *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val hash : t -> int
