open Netaddr

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

type config = {
  local_asn : Asn.t;
  local_id : Ipv4.t;
  hold_time : int;
  add_paths : bool;
  connect_retry : int;
}

type t = {
  config : config;
  mutable state : state;
  mutable peer_asn : Asn.t option;
  mutable peer_id : Ipv4.t option;
  mutable negotiated_hold : int;
  mutable negotiated_add_paths : bool;
}

type event =
  | Start
  | Stop
  | Connection_up
  | Connection_failed
  | Message of Msg.t
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired

type action =
  | Send of Msg.t
  | Connect_transport
  | Close_transport
  | Session_established of { peer_asn : Asn.t; peer_id : Ipv4.t; add_paths : bool }
  | Session_down of string
  | Set_hold_timer of int
  | Set_keepalive_timer of int
  | Set_connect_retry of int

let create config =
  {
    config;
    state = Idle;
    peer_asn = None;
    peer_id = None;
    negotiated_hold = config.hold_time;
    negotiated_add_paths = false;
  }

let state t = t.state
let negotiated_add_paths t = t.negotiated_add_paths

let peer t =
  match (t.peer_asn, t.peer_id) with
  | Some asn, Some id -> Some (asn, id)
  | _, _ -> None

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Idle -> "Idle"
    | Connect -> "Connect"
    | Active -> "Active"
    | Open_sent -> "OpenSent"
    | Open_confirm -> "OpenConfirm"
    | Established -> "Established")

let open_message t =
  Msg.Open
    {
      Msg.asn = t.config.local_asn;
      hold_time = t.config.hold_time;
      bgp_id = t.config.local_id;
      add_paths = t.config.add_paths;
    }

let reset t =
  t.state <- Idle;
  t.peer_asn <- None;
  t.peer_id <- None;
  t.negotiated_add_paths <- false

(* Tear the session down with a NOTIFICATION. *)
let fail t ~code ~subcode reason =
  let was_up = t.state = Established in
  reset t;
  [ Send (Msg.Notification { Msg.code; subcode; data = reason }) ]
  @ (if was_up then [ Session_down reason ] else [])
  @ [ Close_transport; Set_hold_timer 0; Set_keepalive_timer 0 ]

let accept_open t (o : Msg.open_params) =
  if o.Msg.hold_time <> 0 && o.Msg.hold_time < 3 then
    fail t ~code:2 ~subcode:6 "unacceptable hold time"
  else begin
    t.peer_asn <- Some o.Msg.asn;
    t.peer_id <- Some o.Msg.bgp_id;
    t.negotiated_hold <-
      (if o.Msg.hold_time = 0 || t.config.hold_time = 0 then 0
       else min o.Msg.hold_time t.config.hold_time);
    t.negotiated_add_paths <- t.config.add_paths && o.Msg.add_paths;
    t.state <- Open_confirm;
    [ Send Msg.Keepalive; Set_hold_timer t.negotiated_hold;
      Set_keepalive_timer (t.negotiated_hold / 3) ]
  end

let establish t =
  t.state <- Established;
  match (t.peer_asn, t.peer_id) with
  | Some peer_asn, Some peer_id ->
    [ Session_established
        { peer_asn; peer_id; add_paths = t.negotiated_add_paths } ]
  | _, _ ->
    (* cannot happen: OPEN precedes the keepalive that establishes *)
    reset t;
    [ Session_down "internal: missing OPEN" ]

let handle t event =
  match (t.state, event) with
  (* --- administrative --------------------------------------------- *)
  | Idle, Start ->
    t.state <- Connect;
    [ Connect_transport; Set_connect_retry t.config.connect_retry ]
  | _, Stop ->
    let was_up = t.state = Established in
    reset t;
    (if was_up then [ Session_down "administrative stop" ] else [])
    @ [ Close_transport; Set_hold_timer 0; Set_keepalive_timer 0 ]
  | Idle, _ -> []
  (* --- connecting --------------------------------------------------- *)
  | Connect, Connection_up | Active, Connection_up ->
    t.state <- Open_sent;
    [ Send (open_message t); Set_connect_retry 0 ]
  | Connect, Connection_failed ->
    t.state <- Active;
    [ Set_connect_retry t.config.connect_retry ]
  | Active, Connection_failed -> []
  | (Connect | Active), Connect_retry_expired ->
    t.state <- Connect;
    [ Connect_transport; Set_connect_retry t.config.connect_retry ]
  | (Connect | Active), _ -> []
  (* --- OPEN exchange ------------------------------------------------ *)
  | Open_sent, Message (Msg.Open o) -> accept_open t o
  | Open_confirm, Message Msg.Keepalive -> establish t
  | Open_confirm, Message (Msg.Open _) ->
    fail t ~code:6 ~subcode:7 "collision: duplicate OPEN"
  (* --- established --------------------------------------------------- *)
  | Established, Message Msg.Keepalive -> [ Set_hold_timer t.negotiated_hold ]
  | Established, Message (Msg.Update _) -> [ Set_hold_timer t.negotiated_hold ]
  | Established, Keepalive_timer_expired ->
    [ Send Msg.Keepalive; Set_keepalive_timer (t.negotiated_hold / 3) ]
  (* --- errors common to the session states --------------------------- *)
  | (Open_sent | Open_confirm | Established), Hold_timer_expired ->
    fail t ~code:4 ~subcode:0 "hold timer expired"
  | (Open_sent | Open_confirm | Established), Message (Msg.Notification n) ->
    let was_up = t.state = Established in
    reset t;
    (if was_up then
       [ Session_down (Printf.sprintf "peer notification %d/%d" n.Msg.code n.Msg.subcode) ]
     else [])
    @ [ Close_transport; Set_hold_timer 0; Set_keepalive_timer 0 ]
  | (Open_sent | Open_confirm | Established), Connection_failed ->
    let was_up = t.state = Established in
    reset t;
    (if was_up then [ Session_down "transport failure" ] else [])
    @ [ Set_hold_timer 0; Set_keepalive_timer 0 ]
  | Open_sent, Message _ -> fail t ~code:5 ~subcode:0 "message before OPEN"
  | Open_confirm, Message _ ->
    fail t ~code:5 ~subcode:0 "unexpected message in OpenConfirm"
  | Established, Message (Msg.Open _) ->
    fail t ~code:6 ~subcode:7 "OPEN on established session"
  | (Open_sent | Open_confirm | Established), (Connection_up | Connect_retry_expired)
    ->
    []
  | (Open_sent | Open_confirm), Keepalive_timer_expired -> []
  | Established, Start -> []
  | (Open_sent | Open_confirm), Start -> []
