open Netaddr

type learned = Ebgp | Confed_ebgp | Ibgp | Local

type candidate = {
  route : Route.t;
  learned : learned;
  peer_id : Ipv4.t;
  peer_addr : Ipv4.t;
  igp_cost : int;
}

let candidate ?(learned = Local) ?(peer_id = Ipv4.zero) ?(peer_addr = Ipv4.zero)
    ?(igp_cost = 0) route =
  { route; learned; peer_id; peer_addr; igp_cost }

type med_mode = Always_compare | Per_neighbor_as

let med (r : Route.t) = match r.Route.med with None -> 0 | Some m -> m

(* Keep the candidates minimising [f]; preserves input order. *)
let keep_min f cands =
  match cands with
  | [] | [ _ ] -> cands
  | _ ->
    let m = List.fold_left (fun acc c -> min acc (f c)) max_int cands in
    List.filter (fun c -> f c = m) cands

let step1 cands = keep_min (fun c -> -c.route.Route.local_pref) cands
let step2 cands = keep_min (fun c -> As_path.length c.route.Route.as_path) cands
let step3 cands = keep_min (fun c -> Origin.rank c.route.Route.origin) cands

let step4 ~med_mode cands =
  match med_mode with
  | Always_compare -> keep_min (fun c -> med c.route) cands
  | Per_neighbor_as ->
    (* MED only discriminates among routes from the same neighbour AS. *)
    let key c =
      match Route.neighbor_as c.route with
      | None -> -1
      | Some asn -> Asn.to_int asn
    in
    let min_by_key = Hashtbl.create 8 in
    let note c =
      let k = key c and m = med c.route in
      match Hashtbl.find_opt min_by_key k with
      | Some m' when m' <= m -> ()
      | _ -> Hashtbl.replace min_by_key k m
    in
    List.iter note cands;
    List.filter (fun c -> med c.route = Hashtbl.find min_by_key (key c)) cands

let step5 cands =
  (* eBGP over confed-external over iBGP; locally-originated routes rank
     with eBGP *)
  let rank c =
    match c.learned with Ebgp | Local -> 0 | Confed_ebgp -> 1 | Ibgp -> 2
  in
  keep_min rank cands

let step6 cands = keep_min (fun c -> c.igp_cost) cands

let router_id c =
  match c.route.Route.originator_id with
  | Some id -> Ipv4.to_int id
  | None -> Ipv4.to_int c.peer_id

let step7 cands = keep_min router_id cands
let step8 cands = keep_min (fun c -> Ipv4.to_int c.peer_addr) cands

let steps_1_to_4 ~med_mode cands =
  cands |> step1 |> step2 |> step3 |> step4 ~med_mode

let all_steps ~med_mode =
  [ step1; step2; step3; step4 ~med_mode; step5; step6; step7; step8 ]

let final_tie_break cands =
  match cands with
  | [] -> None
  | first :: rest ->
    let better a b = if Route.compare a.route b.route <= 0 then a else b in
    Some (List.fold_left better first rest)

let best ~med_mode cands =
  final_tie_break (List.fold_left (fun cs f -> f cs) cands (all_steps ~med_mode))

let rank ~med_mode cands =
  (* MED per-neighbour-AS comparison is not transitive, so we cannot sort
     with a comparator: extract the winner repeatedly instead. *)
  let rec go acc = function
    | [] -> List.rev acc
    | cands -> (
      match best ~med_mode cands with
      | None -> List.rev acc
      | Some w ->
        let rest = List.filter (fun c -> c != w) cands in
        go (w :: acc) rest)
  in
  go [] cands

let tie_break_step ~med_mode cands =
  match cands with
  | [] | [ _ ] -> 0
  | _ ->
    let rec go i fs cs =
      match fs with
      | [] -> 8
      | f :: fs' -> ( match f cs with [ _ ] -> i | cs' -> go (i + 1) fs' cs')
    in
    go 1 (all_steps ~med_mode) cands

let describe_step = function
  | 0 -> "single candidate"
  | 1 -> "highest local preference"
  | 2 -> "shortest AS path"
  | 3 -> "lowest origin type"
  | 4 -> "lowest MED"
  | 5 -> "eBGP over iBGP"
  | 6 -> "lowest IGP metric"
  | 7 -> "lowest router ID"
  | 8 -> "lowest peer address"
  | n -> Printf.sprintf "unknown step %d" n
