open Netaddr

type t = { table : (int, Route.t list) Hashtbl.t; mutable entries : int }

let create ?(size_hint = 256) () = { table = Hashtbl.create size_hint; entries = 0 }

let get t prefix =
  match Hashtbl.find_opt t.table (Prefix.to_key prefix) with
  | None -> []
  | Some routes -> routes

let set t prefix routes =
  let key = Prefix.to_key prefix in
  let old = match Hashtbl.find_opt t.table key with None -> 0 | Some rs -> List.length rs in
  (match routes with
  | [] -> Hashtbl.remove t.table key
  | _ -> Hashtbl.replace t.table key routes);
  t.entries <- t.entries - old + List.length routes

let upsert t (route : Route.t) =
  let key = Prefix.to_key route.Route.prefix in
  let old = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
  let replaced = ref None in
  let rest =
    List.filter
      (fun (r : Route.t) ->
        if r.Route.path_id = route.Route.path_id then (
          replaced := Some r;
          false)
        else true)
      old
  in
  match !replaced with
  | Some r when Route.equal r route -> false
  | Some _ ->
    Hashtbl.replace t.table key (rest @ [ route ]);
    true
  | None ->
    Hashtbl.replace t.table key (old @ [ route ]);
    t.entries <- t.entries + 1;
    true

let drop t prefix ~path_id =
  let key = Prefix.to_key prefix in
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some old ->
    let rest = List.filter (fun (r : Route.t) -> r.Route.path_id <> path_id) old in
    if List.length rest = List.length old then false
    else (
      (match rest with
      | [] -> Hashtbl.remove t.table key
      | _ -> Hashtbl.replace t.table key rest);
      t.entries <- t.entries - 1;
      true)

let clear_prefix t prefix =
  let key = Prefix.to_key prefix in
  match Hashtbl.find_opt t.table key with
  | None -> 0
  | Some old ->
    let n = List.length old in
    Hashtbl.remove t.table key;
    t.entries <- t.entries - n;
    n

let clear t =
  Hashtbl.reset t.table;
  t.entries <- 0

let entry_count t = t.entries
let prefix_count t = Hashtbl.length t.table
let mem t prefix = Hashtbl.mem t.table (Prefix.to_key prefix)

let fold f t acc =
  Hashtbl.fold (fun key routes acc -> f (Prefix.of_key key) routes acc) t.table acc

let iter f t = Hashtbl.iter (fun key routes -> f (Prefix.of_key key) routes) t.table
let prefixes t = fold (fun p _ acc -> p :: acc) t []
