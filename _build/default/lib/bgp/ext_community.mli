(** Extended communities (RFC 4360): 8-byte opaque values.

    ABRR (§2.3.2) marks updates that have already been reflected by an ARR
    with a single-purpose extended community — a cheaper loop breaker than
    CLUSTER_LIST — exposed here as {!reflected}. *)

type t = private { typ : int; subtyp : int; value : int }
(** [typ], [subtyp] are bytes; [value] is the remaining 48 bits. *)

val make : typ:int -> subtyp:int -> value:int -> t
(** @raise Invalid_argument if a field is out of range. *)

val reflected : t
(** The ABRR "update was reflected by an ARR" marker
    (experimental type 0x80, sub-type 0x52 'R'). *)

val is_reflected : t -> bool
val typ : t -> int
val subtyp : t -> int
val value : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
