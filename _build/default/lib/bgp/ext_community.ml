type t = { typ : int; subtyp : int; value : int }

let make ~typ ~subtyp ~value =
  if typ < 0 || typ > 0xFF || subtyp < 0 || subtyp > 0xFF then
    invalid_arg "Ext_community.make: type fields must be bytes";
  if value < 0 || value > 0xFFFF_FFFF_FFFF then
    invalid_arg "Ext_community.make: value must fit in 48 bits";
  { typ; subtyp; value }

let reflected = { typ = 0x80; subtyp = 0x52; value = 0 }
let is_reflected t = t.typ = reflected.typ && t.subtyp = reflected.subtyp
let typ t = t.typ
let subtyp t = t.subtyp
let value t = t.value

let compare a b =
  match Int.compare a.typ b.typ with
  | 0 -> ( match Int.compare a.subtyp b.subtyp with 0 -> Int.compare a.value b.value | c -> c)
  | c -> c

let equal a b = compare a b = 0
let to_string t = Printf.sprintf "0x%02x:0x%02x:%d" t.typ t.subtyp t.value
let pp fmt t = Format.pp_print_string fmt (to_string t)
