(** BGP ORIGIN attribute (RFC 4271 §5.1.1). *)

type t = Igp | Egp | Incomplete

val rank : t -> int
(** Decision-process rank: lower is preferred (IGP < EGP < Incomplete). *)

val compare : t -> t -> int
(** Orders by preference rank. *)

val equal : t -> t -> bool
val to_code : t -> int
val of_code : int -> t option
val pp : Format.formatter -> t -> unit
val to_string : t -> string
