type t = int

let make asn tag =
  if asn < 0 || asn > 0xFFFF || tag < 0 || tag > 0xFFFF then
    invalid_arg "Community.make: components must fit in 16 bits";
  (asn lsl 16) lor tag

let of_int32_bits n = n land 0xFFFF_FFFF
let to_int t = t
let asn t = t lsr 16
let tag t = t land 0xFFFF
let no_export = of_int32_bits 0xFFFF_FF01
let no_advertise = of_int32_bits 0xFFFF_FF02
let compare = Int.compare
let equal = Int.equal
let to_string t = Printf.sprintf "%d:%d" (asn t) (tag t)
let pp fmt t = Format.pp_print_string fmt (to_string t)
