(** Shortest-path-first (Dijkstra) computation over an IGP graph, used for
    decision step 6 (lowest IGP metric to the BGP next hop). *)

val unreachable : int
(** Distance value for unreachable nodes ([max_int]). *)

val run : Graph.t -> src:int -> int array * int array
(** [run g ~src] returns [(dist, parent)]: [dist.(v)] is the metric of the
    shortest path from [src] to [v] ({!unreachable} if none), [parent.(v)]
    the predecessor on that path (-1 for [src] and unreachable nodes). *)

val distances : Graph.t -> src:int -> int array

val path : Graph.t -> src:int -> dst:int -> int list option
(** Node sequence from [src] to [dst] inclusive, or [None]. *)

val all_pairs : Graph.t -> int array array
(** Distance matrix: [m.(u).(v)] = metric of shortest path u→v. *)

val reachable_from : Graph.t -> src:int -> bool array
val connected : Graph.t -> bool
