lib/igp/graph.ml: Array Hashtbl Printf
