lib/igp/spf.mli: Graph
