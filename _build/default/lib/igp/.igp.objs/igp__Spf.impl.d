lib/igp/spf.ml: Array Fun Graph Int List Pqueue
