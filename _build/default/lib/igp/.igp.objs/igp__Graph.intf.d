lib/igp/graph.mli:
