(** Weighted graph over integer nodes [0 .. n-1], modelling the IGP
    topology of an AS (links carry IGP metrics). *)

type t

val create : n:int -> t
val node_count : t -> int
val edge_count : t -> int
(** Directed arc count; an undirected edge counts twice. *)

val add_edge : t -> int -> int -> int -> unit
(** [add_edge g u v metric] adds the undirected link [u -- v]. Adding an
    existing link keeps the smaller metric.
    @raise Invalid_argument on out-of-range nodes or negative metric. *)

val add_arc : t -> int -> int -> int -> unit
(** Directed variant. *)

val neighbors : t -> int -> (int * int) list
(** [(neighbor, metric)] pairs. *)

val metric : t -> int -> int -> int option
(** Metric of the arc [u -> v] if present. *)

val remove_edge : t -> int -> int -> unit
(** Remove the undirected link (both arcs). *)

val degree : t -> int -> int
