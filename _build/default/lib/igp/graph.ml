type t = { adj : (int, int) Hashtbl.t array; mutable arcs : int }
(* adj.(u) maps neighbour v to the arc metric. *)

let create ~n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { adj = Array.init n (fun _ -> Hashtbl.create 4); arcs = 0 }

let node_count g = Array.length g.adj
let edge_count g = g.arcs

let check g u =
  if u < 0 || u >= node_count g then
    invalid_arg (Printf.sprintf "Graph: node %d out of range" u)

let add_arc g u v metric =
  check g u;
  check g v;
  if metric < 0 then invalid_arg "Graph.add_arc: negative metric";
  (match Hashtbl.find_opt g.adj.(u) v with
  | None ->
    Hashtbl.replace g.adj.(u) v metric;
    g.arcs <- g.arcs + 1
  | Some m -> if metric < m then Hashtbl.replace g.adj.(u) v metric)

let add_edge g u v metric =
  add_arc g u v metric;
  add_arc g v u metric

let neighbors g u =
  check g u;
  Hashtbl.fold (fun v m acc -> (v, m) :: acc) g.adj.(u) []

let metric g u v =
  check g u;
  check g v;
  Hashtbl.find_opt g.adj.(u) v

let remove_arc g u v =
  if Hashtbl.mem g.adj.(u) v then begin
    Hashtbl.remove g.adj.(u) v;
    g.arcs <- g.arcs - 1
  end

let remove_edge g u v =
  check g u;
  check g v;
  remove_arc g u v;
  remove_arc g v u

let degree g u =
  check g u;
  Hashtbl.length g.adj.(u)
