let unreachable = max_int

let run g ~src =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Spf.run: source out of range";
  let dist = Array.make n unreachable in
  let parent = Array.make n (-1) in
  let cmp (d1, _) (d2, _) = Int.compare d1 d2 in
  let heap = Pqueue.Heap.create ~cmp () in
  dist.(src) <- 0;
  Pqueue.Heap.push heap (0, src);
  let rec loop () =
    match Pqueue.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if d = dist.(u) then
        (* Not a stale heap entry: relax outgoing arcs. *)
        List.iter
          (fun (v, m) ->
            let nd = d + m in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              Pqueue.Heap.push heap (nd, v)
            end)
          (Graph.neighbors g u);
      loop ()
  in
  loop ();
  (dist, parent)

let distances g ~src = fst (run g ~src)

let path g ~src ~dst =
  let dist, parent = run g ~src in
  if dist.(dst) = unreachable then None
  else begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (build dst [])
  end

let all_pairs g =
  Array.init (Graph.node_count g) (fun src -> distances g ~src)

let reachable_from g ~src =
  Array.map (fun d -> d <> unreachable) (distances g ~src)

let connected g =
  let n = Graph.node_count g in
  n <= 1 || Array.for_all Fun.id (reachable_from g ~src:0)
