type t = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  sum : float;
}

let of_list samples =
  match samples with
  | [] -> invalid_arg "Summary.of_list: empty"
  | _ ->
    let count = List.length samples in
    let sum = List.fold_left ( +. ) 0. samples in
    let mean = sum /. float_of_int count in
    let sq_dev = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples in
    {
      count;
      min = List.fold_left min infinity samples;
      max = List.fold_left max neg_infinity samples;
      mean;
      stddev = sqrt (sq_dev /. float_of_int count);
      sum;
    }

let of_ints samples = of_list (List.map float_of_int samples)

let percentile samples q =
  if samples = [] then invalid_arg "Summary.percentile: empty";
  if q < 0. || q > 100. then invalid_arg "Summary.percentile: q out of range";
  let sorted = List.sort Float.compare samples in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let median samples = percentile samples 50.

let pp fmt t =
  Format.fprintf fmt "n=%d min=%.2f mean=%.2f max=%.2f sd=%.2f" t.count t.min
    t.mean t.max t.stddev
