type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let add t x =
  let bins = Array.length t.counts in
  let idx =
    int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  let idx = max 0 (min (bins - 1) idx) in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let add_int t n = add t (float_of_int n)
let count t = t.total
let bin_counts t = Array.copy t.counts

let bin_bounds t i =
  let bins = float_of_int (Array.length t.counts) in
  let w = (t.hi -. t.lo) /. bins in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let pp ?(width = 40) fmt t =
  let peak = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let bar = String.make (c * width / peak) '#' in
      Format.fprintf fmt "[%10.1f, %10.1f) %6d %s@." lo hi c bar)
    t.counts
