type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?(align = []) ~header rows =
  let cols = List.length header in
  let get_align i = match List.nth_opt align i with Some a -> a | None -> Right in
  let widths = Array.make cols 0 in
  let note row =
    List.iteri (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  note header;
  List.iter note rows;
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (get_align i) widths.(i) cell) row)
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let print ?align ~header rows = print_endline (render ?align ~header rows)

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let series ~title ~x_label ~y_labels points =
  let header = x_label :: y_labels in
  let rows =
    List.map
      (fun (x, ys) ->
        fmt_float ~decimals:1 x :: List.map (fun y -> fmt_float y) ys)
      points
  in
  Printf.sprintf "== %s ==\n%s" title (render ~header rows)
