(** Summary statistics over float samples. *)

type t = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  sum : float;
}

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val of_ints : int list -> t

val percentile : float list -> float -> float
(** [percentile samples q] with [q] in 0..100, linear interpolation.
    @raise Invalid_argument on empty input or out-of-range [q]. *)

val median : float list -> float
val pp : Format.formatter -> t -> unit
