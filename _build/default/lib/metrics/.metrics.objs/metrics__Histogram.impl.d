lib/metrics/histogram.ml: Array Format String
