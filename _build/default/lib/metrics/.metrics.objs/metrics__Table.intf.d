lib/metrics/table.mli:
