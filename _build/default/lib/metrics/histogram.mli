(** Fixed-width bin histogram over floats. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [hi <= lo] or [bins < 1]. Samples outside
    [lo, hi) land in the first/last bin. *)

val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val bin_counts : t -> int array
val bin_bounds : t -> int -> float * float
val pp : ?width:int -> Format.formatter -> t -> unit
(** ASCII bar rendering. *)
