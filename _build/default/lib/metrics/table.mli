(** ASCII table / data-series rendering for the benchmark harness: each
    figure reproduction prints the same rows or series the paper plots. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** Pretty monospace table with a header rule. Missing alignments default
    to Right. *)

val print : ?align:align list -> header:string list -> string list list -> unit

val fmt_int : int -> string
(** Thousands separators: 1234567 -> "1,234,567". *)

val fmt_float : ?decimals:int -> float -> string

val series : title:string -> x_label:string -> y_labels:string list ->
  (float * float list) list -> string
(** Render a multi-series data set (one x column, n y columns) with a
    title — the textual equivalent of one paper sub-figure. *)
