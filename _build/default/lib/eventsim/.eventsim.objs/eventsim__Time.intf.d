lib/eventsim/time.mli: Format
