lib/eventsim/sim.ml: Format Int Pqueue Random Time
