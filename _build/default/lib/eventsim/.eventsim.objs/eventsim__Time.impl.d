lib/eventsim/time.ml: Format
