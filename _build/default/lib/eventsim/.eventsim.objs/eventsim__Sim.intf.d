lib/eventsim/sim.mli: Format Random Time
