(** Simulated time: integer microseconds since simulation start. *)

type t = int

val zero : t
val us : int -> t
val ms : int -> t
val sec : int -> t
val minutes : int -> t
val hours : int -> t
val days : int -> t
val to_sec : t -> float
val to_ms : t -> float
val pp : Format.formatter -> t -> unit
(** Human-readable, e.g. "12.500s". *)
