type t = int

let zero = 0
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let minutes n = sec (60 * n)
let hours n = minutes (60 * n)
let days n = hours (24 * n)
let to_sec t = float_of_int t /. 1e6
let to_ms t = float_of_int t /. 1e3
let pp fmt t = Format.fprintf fmt "%.3fs" (to_sec t)
