(** IPv4 prefixes in canonical form (all host bits zero). *)

type t = private { addr : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** [make addr len] canonicalises [addr] by zeroing host bits.
    @raise Invalid_argument if [len] is outside 0..32. *)

val v : string -> int -> t
(** [v "10.0.0.0" 8] — convenience constructor from dotted quad. *)

val addr : t -> Ipv4.t
val len : t -> int

val default : t
(** 0.0.0.0/0 *)

val host : Ipv4.t -> t
(** /32 prefix for a single address. *)

val of_string : string -> t
(** Parse "a.b.c.d/len". @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Total order: by address, then by length (shorter first). *)

val equal : t -> t -> bool
val hash : t -> int

val to_key : t -> int
(** Injective encoding of a prefix into a single integer, usable as a
    hashtable key: [addr lsl 6 lor len]. *)

val of_key : int -> t

val mem : Ipv4.t -> t -> bool
(** [mem a p] is true iff address [a] falls inside prefix [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true iff [p] contains every address of [q]
    (i.e. [q] is equal to or more specific than [p]). *)

val overlaps : t -> t -> bool
(** True iff the prefixes share at least one address. *)

val first : t -> Ipv4.t
(** Lowest address covered. *)

val last : t -> Ipv4.t
(** Highest address covered. *)

val size : t -> int
(** Number of addresses covered (as an OCaml int; safe for IPv4). *)

val split : t -> t * t
(** Split into the two child half-prefixes.
    @raise Invalid_argument on a /32. *)

val bit : t -> int -> bool
(** [bit p i] is the [i]-th most significant address bit, [i < len p]. *)
