type t = { addr : Ipv4.t; len : int }

let netmask len = if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length must be in 0..32";
  { addr = Ipv4.of_int (Ipv4.to_int addr land netmask len); len }

let v s len = make (Ipv4.of_string s) len
let addr p = p.addr
let len p = p.len
let default = { addr = Ipv4.zero; len = 0 }
let host a = { addr = a; len = 32 }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
    let addr_s = String.sub s 0 i in
    let len_s = String.sub s (i + 1) (String.length s - i - 1) in
    (match (Ipv4.of_string_opt addr_s, int_of_string_opt len_s) with
    | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
    | _, _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.addr) p.len
let pp fmt p = Format.pp_print_string fmt (to_string p)

let compare p q =
  match Ipv4.compare p.addr q.addr with 0 -> Int.compare p.len q.len | c -> c

let equal p q = p.len = q.len && Ipv4.equal p.addr q.addr
let to_key p = (Ipv4.to_int p.addr lsl 6) lor p.len
let of_key k = { addr = Ipv4.of_int (k lsr 6); len = k land 0x3F }
let hash p = Hashtbl.hash (to_key p)
let mem a p = Ipv4.to_int a land netmask p.len = Ipv4.to_int p.addr

let subsumes p q =
  p.len <= q.len && Ipv4.to_int q.addr land netmask p.len = Ipv4.to_int p.addr

let overlaps p q = subsumes p q || subsumes q p
let first p = p.addr
let last p = Ipv4.of_int (Ipv4.to_int p.addr lor (lnot (netmask p.len) land 0xFFFF_FFFF))
let size p = 1 lsl (32 - p.len)

let split p =
  if p.len >= 32 then invalid_arg "Prefix.split: cannot split a /32";
  let left = { p with len = p.len + 1 } in
  let right =
    { addr = Ipv4.of_int (Ipv4.to_int p.addr lor (1 lsl (31 - p.len))); len = p.len + 1 }
  in
  (left, right)

let bit p i = Ipv4.bit p.addr i
