lib/netaddr/ipv4.ml: Char Format Hashtbl Int Printf String
