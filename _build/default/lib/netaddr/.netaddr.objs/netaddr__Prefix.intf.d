lib/netaddr/prefix.mli: Format Ipv4
