lib/netaddr/prefix_trie.mli: Ipv4 Prefix
