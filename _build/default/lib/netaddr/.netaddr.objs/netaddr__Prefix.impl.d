lib/netaddr/prefix.ml: Format Hashtbl Int Ipv4 Printf String
