(** Immutable path-compressed binary trie keyed by IPv4 prefixes.

    Supports exact-match lookup, longest-prefix match on addresses, and
    enumeration of covering / covered prefixes — the primitives needed by
    RIBs and by ABRR address partitions. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val singleton : Prefix.t -> 'a -> 'a t

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Insert or replace the binding for a prefix. *)

val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** [update p f t] applies [f] to the current binding of [p] ([None] if
    absent); [f]'s result replaces it ([None] removes). *)

val remove : Prefix.t -> 'a t -> 'a t
val find : Prefix.t -> 'a t -> 'a option
val mem : Prefix.t -> 'a t -> bool

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** Most specific prefix in the trie containing the address. *)

val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list
(** All prefixes containing the address, most specific first. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** All entries equal to or more specific than the given prefix,
    in increasing prefix order. *)

val cardinal : 'a t -> int
val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in increasing [Prefix.compare] order. *)

val of_list : (Prefix.t * 'a) list -> 'a t

val keys : 'a t -> Prefix.t list
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : (Prefix.t -> 'a -> bool) -> 'a t -> 'a t
