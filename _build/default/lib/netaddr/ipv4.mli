(** IPv4 addresses represented as unboxed OCaml integers in [0, 2^32). *)

type t = private int

val zero : t
val max_addr : t

val of_int : int -> t
(** [of_int n] masks [n] to 32 bits. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds the address [a.b.c.d]. Each octet is masked
    to 8 bits. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parse dotted-quad notation. @raise Invalid_argument on malformed
    input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool

val succ : t -> t
(** Successor address, wrapping at 255.255.255.255. *)

val pred : t -> t
(** Predecessor address, wrapping at 0.0.0.0. *)

val add : t -> int -> t
(** [add a n] offsets [a] by [n], masked to 32 bits. *)

val bit : t -> int -> bool
(** [bit a i] is the [i]-th most significant bit of [a];
    [i] ranges over 0..31. *)

val hash : t -> int
