(* Path-compressed binary trie. Invariants:
   - each [Node]'s children are strictly more specific than its prefix
     and fall in its address range (left: next bit 0, right: next bit 1);
   - a node with [value = None] has two non-empty children
     (otherwise it is compressed away). *)

type 'a t =
  | Empty
  | Node of { pfx : Prefix.t; value : 'a option; l : 'a t; r : 'a t }

let empty = Empty
let is_empty t = t = Empty
let singleton pfx v = Node { pfx; value = Some v; l = Empty; r = Empty }

(* Longest common prefix of two prefixes. *)
let common_prefix p q =
  let x = Ipv4.to_int (Prefix.addr p) lxor Ipv4.to_int (Prefix.addr q) in
  let rec first_diff i = if i >= 32 then 32 else if (x lsr (31 - i)) land 1 = 1 then i else first_diff (i + 1) in
  let l = min (min (Prefix.len p) (Prefix.len q)) (first_diff 0) in
  Prefix.make (Prefix.addr p) l

let node pfx value l r =
  match (value, l, r) with
  | None, Empty, Empty -> Empty
  | None, only, Empty | None, Empty, only -> only
  | _, _, _ -> Node { pfx; value; l; r }

(* Direction of [q] below [pfx]: false = left (bit 0), true = right. *)
let dir pfx q = Prefix.bit q (Prefix.len pfx)

let join p tp q tq =
  let c = common_prefix p q in
  if dir c p then Node { pfx = c; value = None; l = tq; r = tp }
  else Node { pfx = c; value = None; l = tp; r = tq }

let rec update pfx f t =
  match t with
  | Empty -> ( match f None with None -> Empty | Some v -> singleton pfx v)
  | Node ({ pfx = np; value; l; r } as n) ->
    if Prefix.equal pfx np then node np (f value) l r
    else if Prefix.subsumes np pfx then
      if dir np pfx then node np value l (update pfx f r)
      else node np value (update pfx f l) r
    else (
      (* [pfx] is outside or above [np]: splice in a new node. *)
      match f None with
      | None -> t
      | Some v ->
        if Prefix.subsumes pfx np then
          if dir pfx np then Node { pfx; value = Some v; l = Empty; r = Node n }
          else Node { pfx; value = Some v; l = Node n; r = Empty }
        else join pfx (singleton pfx v) np (Node n))

let add pfx v t = update pfx (fun _ -> Some v) t
let remove pfx t = update pfx (fun _ -> None) t

let rec find pfx t =
  match t with
  | Empty -> None
  | Node { pfx = np; value; l; r } ->
    if Prefix.equal pfx np then value
    else if Prefix.subsumes np pfx && Prefix.len np < 32 then
      find pfx (if dir np pfx then r else l)
    else None

let mem pfx t = find pfx t <> None

let rec matches_acc a t acc =
  match t with
  | Empty -> acc
  | Node { pfx; value; l; r } ->
    if not (Prefix.mem a pfx) then acc
    else
      let acc = match value with Some v -> (pfx, v) :: acc | None -> acc in
      if Prefix.len pfx >= 32 then acc
      else if Ipv4.bit a (Prefix.len pfx) then matches_acc a r acc
      else matches_acc a l acc

let matches a t = matches_acc a t []

let longest_match a t =
  match matches a t with [] -> None | best :: _ -> Some best

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Node { pfx; value; l; r } ->
    let acc = match value with Some v -> f pfx v acc | None -> acc in
    fold f r (fold f l acc)

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0

let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

let of_list l = List.fold_left (fun t (p, v) -> add p v t) Empty l

let keys t = List.map fst (to_list t)

let rec map f t =
  match t with
  | Empty -> Empty
  | Node { pfx; value; l; r } ->
    Node { pfx; value = Option.map f value; l = map f l; r = map f r }

let rec covered_all t acc =
  match t with
  | Empty -> acc
  | Node { pfx; value; l; r } ->
    let acc = covered_all r acc in
    let acc = covered_all l acc in
    (match value with Some v -> (pfx, v) :: acc | None -> acc)

let rec covered pfx t =
  match t with
  | Empty -> []
  | Node { pfx = np; value = _; l; r } ->
    if Prefix.subsumes pfx np then covered_all t []
    else if Prefix.subsumes np pfx then
      if dir np pfx then covered pfx r else covered pfx l
    else []

let filter f t =
  fold (fun p v acc -> if f p v then add p v acc else acc) t Empty
