type t = int

let mask32 = 0xFFFF_FFFF
let zero = 0
let max_addr = mask32
let of_int n = n land mask32
let to_int a = a

let of_octets a b c d =
  ((a land 0xFF) lsl 24)
  lor ((b land 0xFF) lsl 16)
  lor ((c land 0xFF) lsl 8)
  lor (d land 0xFF)

let to_octets a =
  ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let of_string_opt s =
  (* Hand-rolled parser: rejects empty octets, values > 255 and trailing
     garbage, which [Scanf] would silently accept in various forms. *)
  let n = String.length s in
  let rec octet i acc digits =
    if i >= n then (i, acc, digits)
    else
      match s.[i] with
      | '0' .. '9' when digits < 3 ->
        octet (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) (digits + 1)
      | _ -> (i, acc, digits)
  in
  let rec go i k acc =
    let j, v, digits = octet i 0 0 in
    if digits = 0 || v > 255 then None
    else
      let acc = (acc lsl 8) lor v in
      if k = 3 then if j = n then Some acc else None
      else if j < n && s.[j] = '.' then go (j + 1) (k + 1) acc
      else None
  in
  go 0 0 0

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let pp fmt a = Format.pp_print_string fmt (to_string a)
let compare = Int.compare
let equal = Int.equal
let succ a = (a + 1) land mask32
let pred a = (a - 1) land mask32
let add a n = (a + n) land mask32
let bit a i = (a lsr (31 - i)) land 1 = 1
let hash a = Hashtbl.hash a
