bench/main.mli:
