bench/exp_table1.ml: Abrr_core Bgp Igp Ipv4 Metrics Netaddr Prefix
