bench/exp_fig67.ml: Abrr_core Analysis Bgp Exp_common List Metrics Printf Topo
