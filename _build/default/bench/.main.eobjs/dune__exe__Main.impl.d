bench/main.ml: Array Exp_ablation Exp_anomalies Exp_convergence Exp_fig3 Exp_fig67 Exp_model_figs Exp_schemes Exp_sessions Exp_table1 Exp_updates List Micro Printf String Sys
