bench/exp_updates.ml: Abrr_core Exp_common Metrics Printf Topo
