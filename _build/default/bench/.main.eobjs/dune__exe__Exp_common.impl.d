bench/exp_common.ml: Abrr_core Bgp Eventsim Format Fun List Metrics Printf Topo
