bench/exp_model_figs.ml: Analysis Float List Metrics Printf
