bench/exp_fig3.ml: Analysis Bgp Exp_common Format List Metrics Topo
