bench/exp_convergence.ml: Abrr_core Bgp Eventsim Igp Ipv4 List Metrics Netaddr Prefix Printf Time
