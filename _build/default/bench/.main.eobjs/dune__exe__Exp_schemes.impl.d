bench/exp_schemes.ml: Abrr_core Exp_common Fun List Metrics Printf Topo
