bench/exp_ablation.ml: Abrr_core Array Bgp Exp_common List Metrics Printf Topo
