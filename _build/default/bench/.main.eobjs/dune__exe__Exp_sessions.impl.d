bench/exp_sessions.ml: Abrr_core Eventsim List Metrics Printf
