bench/micro.ml: Abrr_core Analyze Bechamel Benchmark Bgp Bytes Hashtbl Igp Instance Ipv4 List Measure Metrics Netaddr Prefix Prefix_trie Printf Staged Test Time Toolkit
