bench/exp_anomalies.ml: Abrr_core List Metrics
