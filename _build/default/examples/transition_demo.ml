(* §2.4 demonstration: hitless incremental migration from TBRR to ABRR,
   one address partition at a time, with a rollback.

   Run with: dune exec examples/transition_demo.exe *)

open Netaddr
module C = Abrr_core.Config
module N = Abrr_core.Network
module Part = Abrr_core.Partition

let low = Prefix.of_string "20.0.0.0/16" (* AP 0 of a 4-way partition *)
let mid = Prefix.of_string "130.0.0.0/16" (* AP 2 *)
let high = Prefix.of_string "200.0.0.0/16" (* AP 3 *)
let prefixes = [ ("20.0.0.0/16", low, 4); ("130.0.0.0/16", mid, 5); ("200.0.0.0/16", high, 6) ]

let flat_igp n =
  let g = Igp.Graph.create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Igp.Graph.add_edge g i j (100 + i + (2 * j))
    done
  done;
  g

let () =
  (* Both schemes configured simultaneously; acceptance starts on TBRR. *)
  let tbrr =
    {
      C.clusters =
        [
          { C.trrs = [ 0; 1 ]; clients = [ 4; 5 ] };
          { C.trrs = [ 2; 3 ]; clients = [ 6; 7 ] };
        ];
      multipath = false;
      best_external = false;
    }
  in
  let aps = 4 in
  let abrr =
    {
      C.partition = Part.uniform aps;
      arrs = [| [ 1 ]; [ 3 ]; [ 5 ]; [ 7 ] |];
      loop_prevention = C.Reflected_bit;
    }
  in
  let accept = Array.make aps C.Accept_tbrr in
  let cfg =
    C.make ~n_routers:8 ~igp:(flat_igp 8) ~scheme:(C.Dual { tbrr; abrr; accept }) ()
  in
  let net = N.create cfg in
  List.iter
    (fun (_, p, router) ->
      N.inject net ~router
        ~neighbor:(Ipv4.of_int (0xAC10_0000 + router))
        (Bgp.Route.make
           ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 7018 ])
           ~prefix:p
           ~next_hop:(Ipv4.of_int (0xAC10_0000 + router))
           ()))
    prefixes;
  ignore (N.run net);

  let reachable () =
    List.for_all
      (fun (_, p, exit) ->
        List.for_all
          (fun i -> i = exit || N.best_exit net ~router:i p = Some exit)
          (List.init 8 Fun.id))
      prefixes
  in
  let stage msg =
    ignore (N.run net);
    Printf.printf "%-52s all prefixes reachable: %b\n" msg (reachable ())
  in
  stage "Stage 0: TBRR everywhere.";
  for ap = 0 to aps - 1 do
    N.set_acceptance net ~ap C.Accept_abrr;
    stage (Printf.sprintf "Stage %d: AP %d cut over to ABRR." (ap + 1) ap)
  done;
  N.set_acceptance net ~ap:2 C.Accept_tbrr;
  stage "Rollback drill: AP 2 back on TBRR.";
  N.set_acceptance net ~ap:2 C.Accept_abrr;
  stage "AP 2 re-cutover; migration complete (TBRR can be retired).";
  Printf.printf
    "\nEvery stage converged with full reachability: the ABRR plane was\n\
     already populated before each cutover, so flipping acceptance is\n\
     hitless in both directions.\n"
