(* §2.3 demonstration: the MED gadget (RFC 3345) and the cyclic-IGP
   topology gadget oscillate forever under traditional route reflection,
   while full-mesh iBGP and ABRR converge.

   Run with: dune exec examples/oscillation_demo.exe *)

module G = Abrr_core.Gadgets
module A = Abrr_core.Anomaly

let flavors =
  [
    ("full-mesh iBGP", G.G_full_mesh);
    ("TBRR (traditional)", G.G_tbrr);
    ("ABRR, 1 ARR", G.G_abrr 1);
    ("ABRR, 2 redundant ARRs", G.G_abrr 2);
  ]

let show gadget_name make =
  Printf.printf "%s\n%s\n" gadget_name (String.make (String.length gadget_name) '-');
  List.iter
    (fun (name, flavor) ->
      let g = make flavor in
      let net = G.build g in
      let v = A.run ~max_events:50_000 net in
      Printf.printf "  %-24s %s  (%d best-path changes in %d events)\n" name
        (if A.oscillates v then "OSCILLATES" else "converges")
        v.A.best_changes v.A.events)
    flavors;
  print_newline ()

let () =
  let med = G.med_oscillation G.G_tbrr in
  Printf.printf "Gadget A: %s\n\n" med.G.description;
  show "MED-based oscillation" G.med_oscillation;
  let topo = G.topology_oscillation G.G_tbrr in
  Printf.printf "Gadget B: %s\n\n" topo.G.description;
  show "Topology-based oscillation" G.topology_oscillation;
  Printf.printf
    "ABRR converges on both gadgets regardless of ARR count or placement:\n\
     per prefix it is logically centralized (one reflection hop), and ARRs\n\
     advertise all best AS-level routes, so clients decide like full mesh.\n"
