examples/transition_demo.ml: Abrr_core Array Bgp Fun Igp Ipv4 List Netaddr Prefix Printf
