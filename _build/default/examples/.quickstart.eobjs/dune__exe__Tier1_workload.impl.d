examples/tier1_workload.ml: Abrr_core Array Bgp Eventsim Fun List Metrics Printf Topo
