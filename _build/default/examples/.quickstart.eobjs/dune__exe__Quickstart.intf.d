examples/quickstart.mli:
