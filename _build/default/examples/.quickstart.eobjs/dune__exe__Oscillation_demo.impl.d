examples/oscillation_demo.ml: Abrr_core List Printf String
