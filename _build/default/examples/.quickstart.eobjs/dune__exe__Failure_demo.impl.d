examples/failure_demo.ml: Abrr_core Bgp Igp Ipv4 Netaddr Prefix Printf
