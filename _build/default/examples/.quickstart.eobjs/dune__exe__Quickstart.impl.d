examples/quickstart.ml: Abrr_core Bgp Eventsim Format Igp Ipv4 Netaddr Prefix Printf
