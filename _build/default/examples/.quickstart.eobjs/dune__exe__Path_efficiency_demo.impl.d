examples/path_efficiency_demo.ml: Abrr_core Printf
