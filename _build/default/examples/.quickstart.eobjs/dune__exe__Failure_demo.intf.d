examples/failure_demo.mli:
