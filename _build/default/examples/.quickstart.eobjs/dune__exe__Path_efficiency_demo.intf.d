examples/path_efficiency_demo.mli:
