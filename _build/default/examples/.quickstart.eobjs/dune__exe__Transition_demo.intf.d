examples/transition_demo.mli:
