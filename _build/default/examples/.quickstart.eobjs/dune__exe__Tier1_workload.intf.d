examples/tier1_workload.mli:
