(* §2.3.3 demonstration: single-path TBRR steers a client through the
   reflector's preferred exit; ABRR preserves the client's own hot-potato
   choice, at any ARR placement.

   Run with: dune exec examples/path_efficiency_demo.exe *)

module G = Abrr_core.Gadgets
module A = Abrr_core.Anomaly
module N = Abrr_core.Network

let () =
  let g = G.path_inefficiency G.G_full_mesh in
  Printf.printf "Scenario: %s\n" g.G.description;
  Printf.printf
    "Observer r%d sits 10 IGP units from exit r%d and 50 from exit r%d;\n\
     the reflector r0 is 10 from r%d and 50 from r%d.\n\n"
    G.observer G.near_exit G.far_exit G.far_exit G.near_exit;
  let igp_cost net src dst = N.igp_distance net src dst in
  let show name flavor =
    let g = G.path_inefficiency flavor in
    let net = G.build g in
    ignore (A.run net);
    match N.best_exit net ~router:G.observer g.G.prefix with
    | None -> Printf.printf "  %-22s no route!\n" name
    | Some exit ->
      let cost = igp_cost net G.observer exit in
      let optimal = igp_cost net G.observer G.near_exit in
      Printf.printf "  %-22s exits via r%d, IGP cost %d%s\n" name exit cost
        (if cost = optimal then " (optimal)"
         else Printf.sprintf " (%.0fx the optimal %d)"
             (float_of_int cost /. float_of_int optimal)
             optimal)
  in
  show "full-mesh iBGP" G.G_full_mesh;
  show "TBRR (single path)" G.G_tbrr;
  show "ABRR" (G.G_abrr 1);
  Printf.printf
    "\nTBRR hides the nearer exit because the reflector only passes on its\n\
     own best route. The ARR passes on every AS-level-best route, so the\n\
     observer keeps its IGP-optimal exit (and placement of the ARR is\n\
     irrelevant to path quality).\n"
