(* §2.3.3 robustness demonstration: redundant ARRs mask a reflector
   failure, the blast radius of losing a whole reflector pair is one
   address partition (vs a whole cluster under TBRR), and a recovered
   ARR resynchronises through BGP's initial table exchange.

   Run with: dune exec examples/failure_demo.exe *)

open Netaddr
module C = Abrr_core.Config
module N = Abrr_core.Network
module Part = Abrr_core.Partition

let neighbor k = Ipv4.of_int (0xAC10_0000 + k)

let flat_igp n =
  let g = Igp.Graph.create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Igp.Graph.add_edge g i j (100 + i + (2 * j))
    done
  done;
  g

let inject net ~router prefix =
  N.inject net ~router ~neighbor:(neighbor router)
    (Bgp.Route.make
       ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 7018 ])
       ~prefix ~next_hop:(neighbor router) ())

let low = Prefix.of_string "20.0.0.0/16" (* AP 0 *)
let high = Prefix.of_string "200.0.0.0/16" (* AP 1 *)

let visible net router p =
  match N.best_exit net ~router p with Some _ -> "reachable" | None -> "LOST"

let show net stage =
  Printf.printf "%-44s AP0 prefix: %-9s  AP1 prefix: %s\n" stage
    (visible net 7 low) (visible net 7 high)

let () =
  (* 8 routers; AP0 served by ARRs {0,1}, AP1 by {2,3}; router 7 observes. *)
  let cfg =
    C.make ~n_routers:8 ~igp:(flat_igp 8)
      ~scheme:(C.abrr ~partition:(Part.uniform 2) [| [ 0; 1 ]; [ 2; 3 ] |])
      ()
  in
  let net = N.create cfg in
  inject net ~router:4 low;
  inject net ~router:5 high;
  ignore (N.run net);
  show net "Steady state (2 ARRs per AP):";

  N.fail net ~router:0;
  ignore (N.run net);
  show net "ARR 0 crashes (ARR 1 still serves AP0):";
  inject net ~router:6 (Prefix.of_string "21.0.0.0/16");
  ignore (N.run net);
  Printf.printf "%-44s new AP0 route via survivor: %s\n" ""
    (visible net 7 (Prefix.of_string "21.0.0.0/16"));

  N.fail net ~router:1;
  ignore (N.run net);
  show net "ARR 1 also crashes (AP0 unserved):";

  N.recover net ~router:0;
  ignore (N.run net);
  show net "ARR 0 cold-restarts and resyncs:";
  Printf.printf
    "\nThe blast radius of losing every reflector of a partition is that\n\
     partition only; other APs never flinch. Under TBRR the same double\n\
     failure isolates an entire cluster's clients from the whole table\n\
     (see `dune exec bench/main.exe -- ablation`).\n"
