(* End-to-end Tier-1 pipeline (the §4 methodology at laptop scale):
   generate an ISP topology, a synthetic routing table, feed the snapshot,
   replay an update trace, and compare TBRR against ABRR route reflectors.

   Run with: dune exec examples/tier1_workload.exe *)

module N = Abrr_core.Network
module R = Abrr_core.Router
module T = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen

let () =
  let topo =
    T.generate (T.spec ~pops:8 ~routers_per_pop:6 ~peer_ases:15 ~peering_points_per_as:6 ())
  in
  let table = RG.generate topo (RG.spec ~n_prefixes:500 ()) in
  let trace =
    TG.generate table
      (TG.spec ~events:500 ~duration:(Eventsim.Time.hours 6)
         ~jitter:(Eventsim.Time.ms 80) ())
  in
  Printf.printf
    "Workload: %d routers in %d PoPs, %d peer ASes, %d eBGP sessions,\n\
     %d prefixes (%d peer-learned), %d routes in the snapshot,\n\
     %d update actions in the trace.\n\n"
    topo.T.n_routers topo.T.spec.T.pops topo.T.spec.T.peer_ases
    (List.length topo.T.sessions) 500 (RG.peer_prefix_count table)
    (RG.total_routes table)
    (let a, w = TG.action_count trace in
     a + w);
  let run name scheme =
    let cfg =
      T.config ~med_mode:Bgp.Decision.Always_compare
        ~proc_delay:(Eventsim.Time.ms 150) ~scheme topo
    in
    (let report = Verify.Static.analyze cfg in
     Printf.printf "%s static check: %s\n" name (Verify.Report.summary report);
     Verify.Static.assert_ok report);
    let net = N.create cfg in
    RG.inject_all table net;
    ignore (N.run ~max_events:20_000_000 net);
    Array.iter
      (fun i -> Abrr_core.Counters.reset (N.counters net i))
      (Array.init topo.T.n_routers Fun.id);
    TG.schedule net trace;
    ignore (N.run ~max_events:50_000_000 net);
    let rr_ids =
      List.filter
        (fun i -> R.is_trr (N.router net i) || R.is_arr (N.router net i))
        (List.init topo.T.n_routers Fun.id)
    in
    let avg f =
      let vals = List.map (fun i -> float_of_int (f i)) rr_ids in
      (Metrics.Summary.of_list vals).Metrics.Summary.mean
    in
    Printf.printf "%s (%d reflectors):\n" name (List.length rr_ids);
    Printf.printf "  RIB-In  entries per RR: %8.0f\n"
      (avg (fun i -> R.rib_in_entries (N.router net i)));
    Printf.printf "  RIB-Out entries per RR: %8.0f\n"
      (avg (fun i -> R.rib_out_entries (N.router net i)));
    Printf.printf "  trace updates received: %8.0f\n"
      (avg (fun i -> (N.counters net i).Abrr_core.Counters.updates_received));
    Printf.printf "  trace updates generated:%8.0f\n\n"
      (avg (fun i -> (N.counters net i).Abrr_core.Counters.updates_generated))
  in
  run "TBRR, one cluster pair per PoP" (T.tbrr_scheme topo);
  run "ABRR, 8 APs x 2 ARRs" (T.abrr_scheme ~aps:8 ~arrs_per_ap:2 topo);
  run "ABRR, 16 APs x 2 ARRs" (T.abrr_scheme ~aps:16 ~arrs_per_ap:2 topo);
  Printf.printf
    "ABRR reflectors hold substantially smaller RIBs and generate far\n\
     fewer updates; doubling the partition count halves the RIB-Out.\n"
