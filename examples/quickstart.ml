(* Quickstart: a 10-router AS running ABRR with 2 address partitions and
   2 redundant ARRs per partition. Two border routers learn routes to
   the same prefix; every router converges on its best exit.

   Run with: dune exec examples/quickstart.exe *)

open Netaddr
module C = Abrr_core.Config
module N = Abrr_core.Network
module Part = Abrr_core.Partition

let () =
  (* 1. An IGP: a ring of 10 routers with metric-10 links. *)
  let n = 10 in
  let igp = Igp.Graph.create ~n in
  for i = 0 to n - 1 do
    Igp.Graph.add_edge igp i ((i + 1) mod n) 10
  done;

  (* 2. An ABRR scheme: 2 APs splitting the address space, each served
     by two redundant ARRs. Placement is arbitrary — that is the point. *)
  let scheme =
    C.abrr ~partition:(Part.uniform 2) [| [ 0; 5 ]; [ 2; 7 ] |]
  in
  let config = C.make ~n_routers:n ~igp ~scheme () in

  (* Before simulating anything, the static analyzer proves the setup
     sound: APs cover the space, every router reaches a live ARR. *)
  let report = Verify.Static.analyze config in
  Printf.printf "static check: %s\n\n" (Verify.Report.summary report);
  Verify.Static.assert_ok report;

  let net = N.create config in
  Verify.Invariant.install net;

  (* 3. eBGP feeds: two border routers learn the same prefix. *)
  let prefix = Prefix.of_string "93.184.216.0/24" in
  let feed ~router ~neighbor ~med =
    N.inject net ~router ~neighbor:(Ipv4.of_string neighbor)
      (Bgp.Route.make
         ~as_path:(Bgp.As_path.of_asns [ Bgp.Asn.of_int 3356; Bgp.Asn.of_int 15133 ])
         ~med:(Some med) ~prefix
         ~next_hop:(Ipv4.of_string neighbor)
         ())
  in
  feed ~router:1 ~neighbor:"172.16.0.1" ~med:10;
  feed ~router:6 ~neighbor:"172.16.0.2" ~med:10;

  (* 4. Run to convergence. *)
  (match N.run net with
  | Eventsim.Sim.Quiescent -> ()
  | o -> Format.printf "unexpected outcome: %a@." Eventsim.Sim.pp_outcome o);
  Verify.Invariant.check_now net;
  Printf.printf "converged after %d simulated events at t=%s\n\n"
    (Eventsim.Sim.events_processed (N.sim net))
    (Format.asprintf "%a" Eventsim.Time.pp (N.last_change net));

  (* 5. Inspect: each router picked its IGP-closest exit (hot potato),
     because ARRs advertised BOTH tie-breaking routes (add-paths). *)
  Printf.printf "router  best exit  role\n";
  for i = 0 to n - 1 do
    let r = N.router net i in
    let exit =
      match N.best_exit net ~router:i prefix with
      | Some e -> Printf.sprintf "via r%d" e
      | None -> "eBGP (border)"
    in
    let role = if Abrr_core.Router.is_arr r then "ARR" else "client" in
    Printf.printf "  r%d    %-12s %s\n" i exit role
  done;
  Printf.printf
    "\nBoth exits are used: ABRR preserves full-mesh hot-potato routing.\n"
