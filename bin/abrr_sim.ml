(* abrr-sim: command-line front end to the ABRR simulator.

   Subcommands:
     simulate   run a synthetic Tier-1 workload under a chosen iBGP scheme
     bench      same workload, instrumented: emits a BENCH_sim.json record
     snapshot   run the workload up to an event boundary and checkpoint it
     resume     restore a checkpoint and run it to completion
     bisect     binary-search where two deterministic runs first diverge
     check      statically verify a configuration (no simulation)
     scenario   run the adversarial/operational scenario catalog
     gadget     run one of the Sec 2.3 anomaly gadgets
     trace      generate an MRT update trace (and optionally replay it)
     partition  print an address-partition layout *)

open Cmdliner
module C = Abrr_core.Config
module N = Abrr_core.Network
module R = Abrr_core.Router
module T = Topo.Isp_topo
module RG = Topo.Route_gen
module TG = Topo.Trace_gen

(* ---- shared options ------------------------------------------------ *)

let scheme_enum =
  Arg.enum
    [ ("full-mesh", `Full_mesh); ("tbrr", `Tbrr); ("tbrr-multi", `Tbrr_multi);
      ("tbrr-best-external", `Tbrr_be); ("confed", `Confed); ("rcp", `Rcp);
      ("abrr", `Abrr) ]

let scheme_t =
  Arg.(value & opt scheme_enum `Abrr & info [ "scheme" ] ~doc:"iBGP scheme: $(docv)."
         ~docv:"full-mesh|tbrr|tbrr-multi|abrr")

let med_enum =
  Arg.enum [ ("per-as", Bgp.Decision.Per_neighbor_as); ("always", Bgp.Decision.Always_compare) ]

let med_t =
  Arg.(value & opt med_enum Bgp.Decision.Always_compare
       & info [ "med" ] ~doc:"MED comparison mode ($(docv)).")

let pops_t = Arg.(value & opt int 8 & info [ "pops" ] ~doc:"Number of PoPs (= TBRR clusters).")
let rpp_t = Arg.(value & opt int 6 & info [ "routers-per-pop" ] ~doc:"Routers per PoP.")
let pas_t = Arg.(value & opt int 15 & info [ "peer-ases" ] ~doc:"Number of peer ASes.")
let points_t = Arg.(value & opt int 6 & info [ "points" ] ~doc:"Peering points per peer AS.")
let prefixes_t = Arg.(value & opt int 500 & info [ "prefixes" ] ~doc:"Number of prefixes.")
let aps_t = Arg.(value & opt int 8 & info [ "aps" ] ~doc:"ABRR address partitions.")
let arrs_t = Arg.(value & opt int 2 & info [ "arrs-per-ap" ] ~doc:"Redundant ARRs per AP.")
let events_t = Arg.(value & opt int 500 & info [ "events" ] ~doc:"Trace routing events.")
let seed_t = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")
let mrai_t = Arg.(value & opt int 0 & info [ "mrai" ] ~doc:"MRAI timer in seconds (0 = off).")

let build_topo pops rpp pas points seed =
  T.generate (T.spec ~pops ~routers_per_pop:rpp ~peer_ases:pas ~peering_points_per_as:points ~seed ())

let resolve_scheme topo aps arrs_per_ap = function
  | `Full_mesh -> C.Full_mesh
  | `Tbrr -> T.tbrr_scheme topo
  | `Tbrr_multi -> T.tbrr_scheme ~multipath:true topo
  | `Tbrr_be -> C.tbrr ~best_external:true topo.T.clusters
  | `Confed -> T.confed_scheme topo
  | `Rcp -> T.rcp_scheme topo
  | `Abrr -> T.abrr_scheme ~aps ~arrs_per_ap topo

(* The simulate/bench workload from one set of CLI knobs. snapshot,
   resume and bisect must rebuild bit-identical runs from the same
   flags, so all of them share this. *)
let build_workload med pops rpp pas points prefixes aps arrs events seed mrai =
  let topo = build_topo pops rpp pas points seed in
  let table = RG.generate topo (RG.spec ~n_prefixes:prefixes ~seed ()) in
  let trace =
    TG.generate table
      (TG.spec ~events ~duration:(Eventsim.Time.days 14) ~jitter:(Eventsim.Time.ms 80)
         ~seed ())
  in
  let cfg scheme =
    (* per-router processing phases: synchronized rounds can livelock
       confederations (and TBRR) on ties; real routers are never in
       lockstep *)
    T.config ~med_mode:med ~mrai:(Eventsim.Time.sec mrai)
      ~proc_delay:(Eventsim.Time.ms 150) ~proc_jitter:(Eventsim.Time.ms 400)
      ~scheme:(resolve_scheme topo aps arrs scheme)
      topo
  in
  (topo, table, trace, cfg)

(* Feed the eBGP snapshot, wait for convergence, reset the counters and
   pre-schedule the whole (reified) update trace — the run is then
   checkpointable at any trace-phase event boundary. Returns the event
   count at the trace-phase start. *)
let feed_and_schedule net table trace =
  RG.inject_all table net;
  ignore (N.run ~max_events:200_000_000 net);
  for i = 0 to N.router_count net - 1 do
    Abrr_core.Counters.reset (N.counters net i)
  done;
  TG.schedule net trace;
  Eventsim.Sim.events_processed (N.sim net)

(* ---- simulate ------------------------------------------------------ *)

let simulate scheme med pops rpp pas points prefixes aps arrs events seed mrai =
  let topo, table, trace, cfg = build_workload med pops rpp pas points prefixes aps arrs events seed mrai in
  let net = N.create (cfg scheme) in
  RG.inject_all table net;
  let snapshot_outcome = N.run ~max_events:200_000_000 net in
  for i = 0 to N.router_count net - 1 do
    Abrr_core.Counters.reset (N.counters net i)
  done;
  TG.schedule net trace;
  let trace_outcome = N.run ~max_events:500_000_000 net in
  Printf.printf
    "topology : %d routers, %d PoPs, %d eBGP sessions\nworkload : %d prefixes (%d routes), %d trace events\n"
    topo.T.n_routers pops (List.length topo.T.sessions) prefixes
    (RG.total_routes table) events;
  Printf.printf "snapshot : %s\ntrace    : %s\n"
    (Format.asprintf "%a" Eventsim.Sim.pp_outcome snapshot_outcome)
    (Format.asprintf "%a" Eventsim.Sim.pp_outcome trace_outcome);
  let rr_ids =
    List.filter
      (fun i -> R.is_trr (N.router net i) || R.is_arr (N.router net i))
      (List.init topo.T.n_routers Fun.id)
  in
  let avg f =
    match rr_ids with
    | [] -> 0.
    | _ ->
      (Metrics.Summary.of_list (List.map (fun i -> float_of_int (f i)) rr_ids))
        .Metrics.Summary.mean
  in
  if rr_ids <> [] then begin
    Printf.printf "reflector averages over %d RRs:\n" (List.length rr_ids);
    Printf.printf "  rib-in %.0f  rib-out %.0f  rx %.0f  gen %.0f  tx %.0f\n"
      (avg (fun i -> R.rib_in_entries (N.router net i)))
      (avg (fun i -> R.rib_out_entries (N.router net i)))
      (avg (fun i -> (N.counters net i).Abrr_core.Counters.updates_received))
      (avg (fun i -> (N.counters net i).Abrr_core.Counters.updates_generated))
      (avg (fun i -> (N.counters net i).Abrr_core.Counters.updates_transmitted))
  end;
  let total = N.total_counters net in
  Printf.printf "network totals: rx %d  gen %d  tx %d  bytes-tx %d\n"
    total.Abrr_core.Counters.updates_received
    total.Abrr_core.Counters.updates_generated
    total.Abrr_core.Counters.updates_transmitted
    total.Abrr_core.Counters.bytes_transmitted;
  `Ok ()

let simulate_cmd =
  let term =
    Term.(
      ret
        (const simulate $ scheme_t $ med_t $ pops_t $ rpp_t $ pas_t $ points_t
        $ prefixes_t $ aps_t $ arrs_t $ events_t $ seed_t $ mrai_t))
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a synthetic Tier-1 workload.") term

(* ---- bench ---------------------------------------------------------- *)

let scheme_name = function
  | `Full_mesh -> "full-mesh"
  | `Tbrr -> "tbrr"
  | `Tbrr_multi -> "tbrr-multi"
  | `Tbrr_be -> "tbrr-best-external"
  | `Confed -> "confed"
  | `Rcp -> "rcp"
  | `Abrr -> "abrr"

(* The simulate workload, instrumented with the observability layer
   (trace sink + phase timers) and reported as a BENCH_sim.json record
   instead of free-form text — see OBSERVABILITY.md.

   --scheme may be repeated; each scheme is an independent simulation
   point, run in CLI order. --jobs N shards each simulation itself
   across N domains (Network.Sharded): the conservative-window engine
   makes the sharded run digest-identical to the serial one, so the
   emitted record is byte-identical whatever the job count — only the
   ungated wall_s fields vary. That byte-equality is the CI gate for
   the sharded core.

   --checkpoint-every pauses the trace phase every N events and writes
   a numbered segment snapshot per scheme (lib/snapshot);
   --resume-dir restores each scheme from its latest (or --resume-seg)
   segment and finishes the run from there. --deterministic zeroes the
   wall-clock field and omits phase timings, so an uninterrupted, a
   checkpointed and a resumed run of the same workload emit
   byte-identical records — the property CI asserts. *)
let bench schemes med pops rpp pas points prefixes aps arrs events seed mrai
    decision jobs json out_dir deterministic ckpt_every ckpt_dir resume_dir
    resume_seg =
  let module E = Metrics.Emit in
  let module Sim = Eventsim.Sim in
  if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else if (match ckpt_every with Some n -> n < 1 | None -> false) then
    `Error (false, "--checkpoint-every must be >= 1")
  else begin
    let schemes = if schemes = [] then [ `Abrr ] else schemes in
    let _topo, table, trace, cfg =
      build_workload med pops rpp pas points prefixes aps arrs events seed mrai
    in
    let cfg scheme = { (cfg scheme) with Abrr_core.Config.decision } in
    let fi = float_of_int in
    (* One run step, serial or sharded per --jobs. Sharded max_events
       has barrier granularity (may overshoot by part of a window) —
       harmless here: every call either runs to quiescence or feeds the
       checkpoint loop, which pauses at *some* event boundary. *)
    let run_net net ~max_events =
      if jobs <= 1 then N.run ~max_events net
      else fst (N.Sharded.run ~max_events net ~jobs)
    in
    let point scheme =
      let name = scheme_name scheme in
      let wall0 = Unix.gettimeofday () in
      let net = N.create (cfg scheme) in
      let sim = N.sim net in
      let resumed =
        match resume_dir with
        | None -> false
        | Some dir -> (
          let path =
            match resume_seg with
            | Some k -> Some (Snapshot.segment_path ~dir ~label:name k)
            | None -> Option.map snd (Snapshot.latest_segment ~dir ~label:name)
          in
          match path with
          | None ->
            Printf.eprintf
              "bench: no %s segment under %s, running from scratch\n" name dir;
            false
          | Some path -> (
            match Snapshot.load net ~path with
            | Ok () -> true
            | Error e -> failwith (Printf.sprintf "%s: %s" path e)))
      in
      if not resumed then begin
        (* The sink travels inside the snapshots, so a resumed run keeps
           the ring it had at the pause instead of getting a fresh one. *)
        let sink = Sim.Trace.make ~capacity:4096 ~sample_every:64 () in
        Sim.set_sink sim sink;
        Sim.phase sim "snapshot" (fun () ->
            RG.inject_all table net;
            ignore (run_net net ~max_events:200_000_000));
        for i = 0 to N.router_count net - 1 do
          Abrr_core.Counters.reset (N.counters net i)
        done
      end;
      Sim.phase sim "trace" (fun () ->
          if not resumed then TG.schedule net trace;
          match ckpt_every with
          | None -> ignore (run_net net ~max_events:500_000_000)
          | Some every ->
            let seg0 =
              match Snapshot.latest_segment ~dir:ckpt_dir ~label:name with
              | Some (k, _) -> k + 1
              | None -> 0
            in
            let rec loop remaining seg =
              if remaining > 0 then
                match run_net net ~max_events:(min every remaining) with
                | Sim.Event_limit ->
                  let path = Snapshot.segment_path ~dir:ckpt_dir ~label:name seg in
                  (match Snapshot.save net ~path with
                  | Ok () -> ()
                  | Error e -> failwith (Printf.sprintf "%s: %s" path e));
                  loop (remaining - every) (seg + 1)
                | Sim.Quiescent | Sim.Deadline -> ()
            in
            loop 500_000_000 seg0);
      let entries =
        match Sim.sink sim with Some s -> Sim.Trace.entries s | None -> []
      in
      E.run ~label:name ~scheme:name
        ~knobs:
          [
            ("pops", fi pops); ("routers_per_pop", fi rpp);
            ("peer_ases", fi pas); ("peering_points", fi points);
            ("prefixes", fi prefixes); ("trace_events", fi events);
            ("seed", fi seed); ("mrai_s", fi mrai);
          ]
        ~wall_s:(if deterministic then 0. else Unix.gettimeofday () -. wall0)
        ~sim_s:(Eventsim.Time.to_sec (Sim.now sim))
        ~events:(Sim.events_processed sim)
        ~counters:(Abrr_core.Counters.to_fields (N.total_counters net))
        ~summaries:
          (match entries with
          | [] -> []
          | es ->
            [
              ( "queue_depth",
                Metrics.Summary.of_ints
                  (List.map (fun e -> e.Sim.Trace.depth) es) );
            ])
        ~phases:
          (if deterministic then []
           else
             List.map (fun (n, st) -> (n, st.Sim.cpu_s)) (Sim.phase_stats sim))
        []
    in
    let runs = List.map point schemes in
    let record = { E.experiment = "sim"; runs } in
    let path = Filename.concat out_dir (E.filename "sim") in
    E.write_file path record;
    if json then print_string (E.to_string (E.record_to_json record))
    else Printf.printf "wrote %s\n" path;
    `Ok ()
  end

let bench_cmd =
  let schemes_t =
    Arg.(value & opt_all scheme_enum []
         & info [ "scheme" ]
             ~doc:
               "iBGP scheme: $(docv). Repeatable; each scheme becomes one \
                run in the emitted record (default: abrr)."
             ~docv:"full-mesh|tbrr|tbrr-multi|abrr")
  in
  let jobs_t =
    Arg.(value & opt int 1
         & info [ "jobs" ]
             ~doc:
               "Shard each simulation across $(docv) domains \
                (Network.Sharded, conservative synchronization windows). \
                Deterministic: the emitted record is byte-identical to \
                --jobs 1 (wall times aside).")
  in
  let json_t =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Echo the record to stdout as well.")
  in
  let out_t =
    Arg.(value & opt string "."
         & info [ "out" ] ~doc:"Directory to write BENCH_sim.json into.")
  in
  let decision_t =
    Arg.(value
         & opt
             (enum
                [
                  ("incremental", Abrr_core.Config.Incremental);
                  ("naive", Abrr_core.Config.Naive);
                ])
             Abrr_core.Config.Incremental
         & info [ "decision" ] ~docv:"incremental|naive"
             ~doc:
               "Decision engine: $(docv). $(b,naive) recomputes every dirty \
                prefix in full (the differential oracle); the emitted record \
                is byte-identical to $(b,incremental) under \
                $(b,--deterministic), which CI asserts.")
  in
  let det_t =
    Arg.(value & flag
         & info [ "deterministic" ]
             ~doc:
               "Zero the wall-clock field and omit phase timings, making the \
                record a pure function of the workload: an uninterrupted, a \
                checkpointed and a resumed run emit byte-identical files.")
  in
  let ckpt_every_t =
    Arg.(value & opt (some int) None
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:
               "Pause the trace phase every $(docv) events and write a \
                segment snapshot per scheme into $(b,--checkpoint-dir).")
  in
  let ckpt_dir_t =
    Arg.(value & opt string "."
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:
               "Directory for segment snapshots ($(i,scheme).seg$(i,K).snap). \
                Must exist.")
  in
  let resume_dir_t =
    Arg.(value & opt (some string) None
         & info [ "resume-dir" ] ~docv:"DIR"
             ~doc:
               "Restore each scheme from its segment snapshot in $(docv) \
                (written by a previous $(b,--checkpoint-every) run under the \
                same workload flags) and finish the run from there. Schemes \
                with no segment present run from scratch.")
  in
  let resume_seg_t =
    Arg.(value & opt (some int) None
         & info [ "resume-seg" ] ~docv:"K"
             ~doc:
               "Segment number to resume from (default: the highest present \
                per scheme).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the simulate workload instrumented with the observability \
          layer and emit a BENCH_sim.json record (see OBSERVABILITY.md). \
          Supports segmented checkpoint/restore of the trace phase \
          (see DESIGN.md, \"Checkpoint/restore\").")
    Term.(
      ret
        (const bench $ schemes_t $ med_t $ pops_t $ rpp_t $ pas_t $ points_t
        $ prefixes_t $ aps_t $ arrs_t $ events_t $ seed_t $ mrai_t
        $ decision_t $ jobs_t $ json_t $ out_t $ det_t $ ckpt_every_t
        $ ckpt_dir_t $ resume_dir_t $ resume_seg_t))

(* ---- snapshot / resume ---------------------------------------------- *)

let outcome_str o = Format.asprintf "%a" Eventsim.Sim.pp_outcome o

let snapshot_run scheme med pops rpp pas points prefixes aps arrs events seed
    mrai at_event out =
  if at_event < 0 then `Error (false, "--at-event must be >= 0")
  else begin
    let _topo, table, trace, cfg =
      build_workload med pops rpp pas points prefixes aps arrs events seed mrai
    in
    let net = N.create (cfg scheme) in
    let base = feed_and_schedule net table trace in
    let o =
      if at_event = 0 then Eventsim.Sim.Event_limit
      else N.run ~max_events:at_event net
    in
    match Snapshot.save net ~path:out with
    | Error e -> `Error (false, "snapshot: " ^ e)
    | Ok () ->
      let sim = N.sim net in
      Printf.printf
        "wrote %s: paused (%s) %d events into the trace phase, t=%.3f s, %d \
         pending\n"
        out (outcome_str o)
        (Eventsim.Sim.events_processed sim - base)
        (Eventsim.Time.to_sec (Eventsim.Sim.now sim))
        (Eventsim.Sim.pending sim);
      `Ok ()
  end

let snapshot_cmd =
  let at_event_t =
    Arg.(value & opt int 10_000
         & info [ "at-event" ] ~docv:"K"
             ~doc:
               "Checkpoint after $(docv) trace-phase events (0 = right at \
                the trace-phase start).")
  in
  let out_t =
    Arg.(value & opt string "net.snap"
         & info [ "out" ] ~doc:"Snapshot file to write (atomically).")
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Run the simulate workload up to a trace-phase event boundary and \
          checkpoint the complete simulation state (RIBs, sessions, \
          counters, clock, random stream, pending events) to a file. Resume \
          with $(b,abrr-sim resume) under the same workload flags; the \
          finished run is byte-identical to an uninterrupted one.")
    Term.(
      ret
        (const snapshot_run $ scheme_t $ med_t $ pops_t $ rpp_t $ pas_t
        $ points_t $ prefixes_t $ aps_t $ arrs_t $ events_t $ seed_t $ mrai_t
        $ at_event_t $ out_t))

let resume_run scheme med pops rpp pas points prefixes aps arrs events seed
    mrai from =
  let _topo, _table, _trace, cfg =
    build_workload med pops rpp pas points prefixes aps arrs events seed mrai
  in
  let net = N.create (cfg scheme) in
  match Snapshot.load net ~path:from with
  | Error e -> `Error (false, Printf.sprintf "%s: %s" from e)
  | Ok () ->
    let sim = N.sim net in
    Printf.printf "restored %s: %d events processed, t=%.3f s, %d pending\n"
      from
      (Eventsim.Sim.events_processed sim)
      (Eventsim.Time.to_sec (Eventsim.Sim.now sim))
      (Eventsim.Sim.pending sim);
    let o = N.run ~max_events:500_000_000 net in
    let total = N.total_counters net in
    Printf.printf "finished: %s at %d events, t=%.3f s\n" (outcome_str o)
      (Eventsim.Sim.events_processed sim)
      (Eventsim.Time.to_sec (Eventsim.Sim.now sim));
    Printf.printf "network totals: rx %d  gen %d  tx %d  bytes-tx %d\n"
      total.Abrr_core.Counters.updates_received
      total.Abrr_core.Counters.updates_generated
      total.Abrr_core.Counters.updates_transmitted
      total.Abrr_core.Counters.bytes_transmitted;
    `Ok ()

let resume_cmd =
  let from_t =
    Arg.(value & opt string "net.snap"
         & info [ "from" ] ~doc:"Snapshot file to restore.")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Restore a checkpoint written by $(b,abrr-sim snapshot) and run it \
          to completion. The workload flags must match the ones the \
          snapshot was taken under (the file carries a config fingerprint \
          and refuses to restore into a different configuration).")
    Term.(
      ret
        (const resume_run $ scheme_t $ med_t $ pops_t $ rpp_t $ pas_t
        $ points_t $ prefixes_t $ aps_t $ arrs_t $ events_t $ seed_t $ mrai_t
        $ from_t))

(* ---- bisect ---------------------------------------------------------- *)

(* Two runs of the same workload compared via canonical state digests at
   increasing trace-phase event indices; binary search localizes the
   first index where the states differ. Without a fault the runs are
   identical (the simulation is a pure function of the workload);
   --fault-rng-at K perturbs run B's random stream right after trace
   event K, modelling the kind of stray-randomness bug the tool exists
   to localize. Each digest probe replays the run from scratch, so use
   small workloads.

   --jobs N replays run B sharded across N domains instead: the search
   then localizes any sharded-vs-serial divergence to the first
   barrier where the digests differ (expected: none — the sharded
   engine is digest-identical by construction, and this is the tool
   that finds the window if that ever breaks). Because a sharded pause
   has barrier granularity, probe k pauses run B at its first barrier
   with >= k events and compares run A at the same processed count. *)
let bisect_run scheme med pops rpp pas points prefixes aps arrs events seed
    mrai fault_at jobs =
  if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else if jobs > 1 && fault_at <> None then
    `Error
      ( false,
        "--jobs compares sharded-vs-serial; it cannot be combined with \
         --fault-rng-at (run B can only carry one fault model)" )
  else begin
  let _topo, table, trace, cfg =
    build_workload med pops rpp pas points prefixes aps arrs events seed mrai
  in
  let build () =
    let net = N.create (cfg scheme) in
    let base = feed_and_schedule net table trace in
    (net, base)
  in
  let advance net base k =
    let sim = N.sim net in
    let target = base + k in
    let cur = Eventsim.Sim.events_processed sim in
    if target > cur then ignore (N.run ~max_events:(target - cur) net)
  in
  let prepare ?sink fault k =
    let net, base = build () in
    (match sink with
    | Some s -> Eventsim.Sim.set_sink (N.sim net) s
    | None -> ());
    (match fault with
    | Some kf when k >= kf ->
      advance net base kf;
      ignore (Eventsim.Prng.int (Eventsim.Sim.rng (N.sim net)) 1_000_000)
    | _ -> ());
    advance net base k;
    net
  in
  let mk_digest fault =
    let memo = Hashtbl.create 16 in
    fun k ->
      match Hashtbl.find_opt memo k with
      | Some d -> d
      | None ->
        let d =
          match Snapshot.digest (prepare fault k) with
          | Ok d -> d
          | Error e -> failwith ("bisect digest: " ^ e)
        in
        Hashtbl.add memo k d;
        d
  in
  let digest_a, digest_b =
    if jobs <= 1 then (mk_digest None, mk_digest fault_at)
    else begin
      (* Sharded run B: a pause has barrier granularity, so probe k
         stops B at its first barrier with >= k events, records the
         exact count reached, and run A is digested at that same
         count — both stay pure functions of k, which is all the
         bisection needs. *)
      let m_memo = Hashtbl.create 16 and d_memo = Hashtbl.create 16 in
      let probe k =
        match Hashtbl.find_opt d_memo k with
        | Some d -> d
        | None ->
          let net, base = build () in
          let target = base + k in
          let cur = Eventsim.Sim.events_processed (N.sim net) in
          if target > cur then
            ignore (N.Sharded.run ~max_events:(target - cur) net ~jobs);
          Hashtbl.replace m_memo k
            (Eventsim.Sim.events_processed (N.sim net) - base);
          let d =
            match Snapshot.digest net with
            | Ok d -> d
            | Error e -> failwith ("bisect digest: " ^ e)
          in
          Hashtbl.add d_memo k d;
          d
      in
      let serial = mk_digest None in
      ((fun k -> ignore (probe k); serial (Hashtbl.find m_memo k)), probe)
    end
  in
  let net_a, base = build () in
  ignore (N.run ~max_events:500_000_000 net_a);
  let hi = Eventsim.Sim.events_processed (N.sim net_a) - base in
  let hi = match fault_at with Some kf -> max hi (kf + 1) | None -> hi in
  Printf.printf "trace phase spans %d events; bisecting [0, %d]\n%!" hi hi;
  match Snapshot.Bisect.search ~lo:0 ~hi ~digest_a ~digest_b with
  | None ->
    Printf.printf "runs are state-identical through event %d\n" hi;
    `Ok ()
  | Some d ->
    Printf.printf "first divergence at trace-phase event %d\n" d;
    let show tag fault =
      let sink = Eventsim.Sim.Trace.make ~capacity:4 ~sample_every:1 () in
      ignore (prepare ~sink fault d);
      Printf.printf "  run %s, last events into the divergence:\n" tag;
      List.iter
        (fun (e : Eventsim.Sim.Trace.entry) ->
          Printf.printf "    t=%.6f s  %-8s  actor=r%d  detail=%d  depth=%d\n"
            (Eventsim.Time.to_sec e.Eventsim.Sim.Trace.time)
            (N.trace_kind_name e.Eventsim.Sim.Trace.kind)
            e.Eventsim.Sim.Trace.actor e.Eventsim.Sim.Trace.detail
            e.Eventsim.Sim.Trace.depth)
        (Eventsim.Sim.Trace.entries sink)
    in
    if jobs > 1 then
      Printf.printf
        "  run B was the sharded replay (--jobs %d); divergence is at \
         barrier granularity\n"
        jobs
    else begin
      show "A" None;
      show "B" fault_at
    end;
    `Ok ()
  end

let bisect_cmd =
  let fault_t =
    Arg.(value & opt (some int) None
         & info [ "fault-rng-at" ] ~docv:"K"
             ~doc:
               "Perturb run B's random stream right after trace-phase event \
                $(docv) — a seeded divergence the search must localize to \
                exactly $(docv). Without it the two runs are identical and \
                the search reports none.")
  in
  let jobs_t =
    Arg.(value & opt int 1
         & info [ "jobs" ]
             ~doc:
               "Replay run B sharded across $(docv) domains \
                (Network.Sharded) and bisect sharded-vs-serial over \
                barrier digests. Incompatible with --fault-rng-at.")
  in
  Cmd.v
    (Cmd.info "bisect"
       ~doc:
         "Binary-search the first trace-phase event index where two runs of \
          the same workload diverge, comparing canonical state digests \
          (lib/snapshot), and print the trace entries leading into the \
          divergence. Each probe replays the run from scratch: use small \
          workloads.")
    Term.(
      ret
        (const bisect_run $ scheme_t $ med_t $ pops_t $ rpp_t $ pas_t
        $ points_t $ prefixes_t $ aps_t $ arrs_t $ events_t $ seed_t $ mrai_t
        $ fault_t $ jobs_t))

(* ---- check ---------------------------------------------------------- *)

let workload_of (table : RG.t) =
  List.concat_map
    (fun routes ->
      List.map
        (fun (r : RG.ebgp_route) -> (r.RG.router, r.RG.neighbor, r.RG.route))
        routes)
    (Array.to_list table.RG.routes)

let gadget_enum =
  Arg.enum
    [ ("med", `Med); ("topology", `Topology); ("path", `Path) ]

let _ = Abrr_core.Gadgets.G_confed (* gadget flavors listed below *)

let gflavor_enum =
  Arg.enum
    [ ("full-mesh", Abrr_core.Gadgets.G_full_mesh); ("tbrr", Abrr_core.Gadgets.G_tbrr);
      ("tbrr-best-external", Abrr_core.Gadgets.G_tbrr_best_external);
      ("confed", Abrr_core.Gadgets.G_confed);
      ("rcp", Abrr_core.Gadgets.G_rcp);
      ("abrr", Abrr_core.Gadgets.G_abrr 1); ("abrr2", Abrr_core.Gadgets.G_abrr 2) ]

(* Exit-code contract shared by check and lint (mirrors explore):
   0 = no failed finding, or the verdict matches --expect;
   1 = failed findings, or the verdict does not match --expect;
   2 = the configuration / workload cannot be built (usage);
   3 = internal analyzer error. *)
let finish_report ~json ~expect report =
  if json then
    print_string (Metrics.Emit.to_string (Verify.Report.to_json report))
  else print_string (Verify.Report.render report);
  let ok = Verify.Report.ok report in
  match expect with
  | None -> Stdlib.exit (if ok then 0 else 1)
  | Some exp ->
    let matches = match exp with `Pass -> ok | `Findings -> not ok in
    prerr_endline
      (if matches then "verdict matches --expect"
       else "verdict does NOT match --expect");
    Stdlib.exit (if matches then 0 else 1)

let json_t =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit the findings as JSON (the $(b,Verify.Report) schema: a \
                 summary object plus one {check; code; severity; detail} \
                 object per finding) instead of the monospace table.")

let expect_t =
  Arg.(value
       & opt (some (enum [ ("pass", `Pass); ("findings", `Findings) ])) None
       & info [ "expect" ]
           ~doc:"Assert the verdict: $(b,pass) (no failed finding) or \
                 $(b,findings) (at least one failure). Exit 0 on match, 1 \
                 otherwise.")

let exits_doc =
  [ Cmd.Exit.info 0 ~doc:"no failed finding, or the $(b,--expect) assertion \
                          matched.";
    Cmd.Exit.info 1 ~doc:"failed findings were reported, or the \
                          $(b,--expect) assertion did not match.";
    Cmd.Exit.info 2 ~doc:"the configuration or workload cannot be built \
                          from the given parameters.";
    Cmd.Exit.info 3 ~doc:"internal analyzer error." ]

let built_config scheme med pops rpp pas points prefixes aps arrs seed =
  (* Bad parameter combinations (0 APs, 0 ARRs, ...) raise while the
     topology/config is being built, before the analyzer can report:
     surface them as the usage exit code rather than uncaught
     exceptions. *)
  match
    let topo = build_topo pops rpp pas points seed in
    let table = RG.generate topo (RG.spec ~n_prefixes:prefixes ~seed ()) in
    let cfg =
      T.config ~med_mode:med ~scheme:(resolve_scheme topo aps arrs scheme) topo
    in
    (cfg, workload_of table)
  with
  | exception e ->
    prerr_endline ("cannot build the configuration: " ^ Printexc.to_string e);
    Stdlib.exit 2
  | v -> v

let check gadget gflavor scheme med pops rpp pas points prefixes aps arrs seed
    json expect =
  match gadget with
  | Some kind ->
    (* A seeded-bad instance: analyze a §2.3 gadget configuration. *)
    let module G = Abrr_core.Gadgets in
    let g =
      match kind with
      | `Med -> G.med_oscillation gflavor
      | `Topology -> G.topology_oscillation gflavor
      | `Path -> G.path_inefficiency gflavor
    in
    if not json then print_endline g.G.description;
    (match Verify.Static.analyze_gadget g with
    | exception e ->
      prerr_endline ("internal analyzer error: " ^ Printexc.to_string e);
      Stdlib.exit 3
    | report -> finish_report ~json ~expect report)
  | None ->
    let cfg, workload =
      built_config scheme med pops rpp pas points prefixes aps arrs seed
    in
    (match Verify.Static.analyze ~workload cfg with
    | exception e ->
      prerr_endline ("internal analyzer error: " ^ Printexc.to_string e);
      Stdlib.exit 3
    | report -> finish_report ~json ~expect report)

let check_cmd =
  let doc =
    "Statically verify a configuration: AP soundness, signaling-graph \
     completeness and per-prefix anomaly potential — without running the \
     simulator. Exit 0 = pass, 1 = findings, 2 = usage, 3 = internal error \
     (see EXIT STATUS)."
  in
  let gadget_t =
    Arg.(value & opt (some gadget_enum) None
         & info [ "gadget" ]
             ~doc:"Analyze a Sec 2.3 gadget configuration (med, topology or \
                   path) instead of the synthetic Tier-1 network.")
  in
  let gflavor_t =
    Arg.(value & opt gflavor_enum Abrr_core.Gadgets.G_tbrr
         & info [ "run-scheme" ] ~doc:"Scheme flavor for $(b,--gadget).")
  in
  Cmd.v (Cmd.info "check" ~doc ~exits:exits_doc)
    Term.(
      const check $ gadget_t $ gflavor_t $ scheme_t $ med_t $ pops_t $ rpp_t
      $ pas_t $ points_t $ prefixes_t $ aps_t $ arrs_t $ seed_t $ json_t
      $ expect_t)

(* ---- lint ----------------------------------------------------------- *)

let lint scheme med pops rpp pas points prefixes aps arrs seed json expect
    bench_out =
  let cfg, workload =
    built_config scheme med pops rpp pas points prefixes aps arrs seed
  in
  match
    let wall0 = Unix.gettimeofday () in
    let t, report = Verify.Static.lint_solved ~workload cfg in
    (t, report, Unix.gettimeofday () -. wall0)
  with
  | exception e ->
    prerr_endline ("internal analyzer error: " ^ Printexc.to_string e);
    Stdlib.exit 3
  | t, report, wall ->
    (match bench_out with
    | None -> ()
    | Some dir ->
      let module P = Verify.Propagation in
      let module E = Metrics.Emit in
      (* One deterministic what-if on top of the full solve: fail the
         lowest link of the topology and measure the incremental
         re-solve (must stay far below the from-scratch node_evals). *)
      let delta_evals =
        match Igp.Graph.neighbors cfg.C.igp 0 with
        | (v, _) :: _ -> (
          match P.apply_delta t (P.Fail_link (0, v)) with
          | Ok t' -> (P.stats t').P.node_evals
          | Error _ -> 0)
        | [] -> 0
      in
      let s = P.stats t in
      let m = E.metric in
      let count sev = float_of_int (Verify.Report.count sev report) in
      let fi = float_of_int in
      let run =
        E.run ~scheme:(scheme_name scheme)
          ~knobs:
            [ ("pops", fi pops); ("routers_per_pop", fi rpp);
              ("routers", fi cfg.C.n_routers); ("prefixes", fi prefixes);
              ("aps", fi aps); ("arrs_per_ap", fi arrs); ("seed", fi seed) ]
          ~wall_s:wall ~label:"lint"
          [ m "findings_pass" (count Verify.Report.Pass);
            m "findings_warn" (count Verify.Report.Warn);
            m "findings_fail" (count Verify.Report.Fail);
            m "prefixes_solved" (fi s.P.prefixes_solved);
            m "learnable_classes" (fi (P.class_count t));
            m "node_evals" (fi s.P.node_evals);
            m "spf_rows" (fi s.P.spf_rows);
            m "delta_node_evals" (fi delta_evals);
            E.metric ~unit_:"s" ~gate:false "lint_wall_s" wall ]
      in
      let path = Filename.concat dir (E.filename "verify") in
      E.write_file path { E.experiment = "verify"; runs = [ run ] };
      prerr_endline ("benchmark record written to " ^ path));
    finish_report ~json ~expect report

let lint_cmd =
  let doc =
    "The unified static lint pipeline at paper scale: structural checks \
     (validation, AP soundness, signaling graph) plus the symbolic \
     propagation analysis — per-prefix convergence verdicts, visibility, \
     suboptimal exits and forwarding loops from an abstract-interpretation \
     fixpoint over the iBGP signaling graph, with no simulation. Handles \
     1000+-router topologies (e.g. $(b,--pops 42 --routers-per-pop 24)). \
     Exit 0 = pass, 1 = findings, 2 = usage, 3 = internal error (see EXIT \
     STATUS)."
  in
  let bench_out_t =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"DIR"
             ~doc:"Write a BENCH_verify.json record (solver statistics, \
                   finding counts, one incremental what-if measurement) \
                   into $(docv), comparable with $(b,bench/compare.exe).")
  in
  Cmd.v (Cmd.info "lint" ~doc ~exits:exits_doc)
    Term.(
      const lint $ scheme_t $ med_t $ pops_t $ rpp_t $ pas_t $ points_t
      $ prefixes_t $ aps_t $ arrs_t $ seed_t $ json_t $ expect_t
      $ bench_out_t)

(* ---- scenario -------------------------------------------------------- *)

(* The adversarial / operational scenario catalog (lib/scenario): each
   scenario builds a fresh network from the shared workload, injects its
   fault or attack, and scores named checks under runtime-invariant
   supervision. The findings flow through the same Verify.Report
   renderer and --expect/exit-code contract as check/lint. *)
let scenario scheme_label only pops rpp pas points prefixes aps arrs seed mrai
    json expect bench_out =
  let env =
    match
      Scenario.Catalog.env
        (Scenario.Catalog.spec ~pops ~routers_per_pop:rpp ~peer_ases:pas
           ~peering_points_per_as:points ~prefixes ~aps ~arrs_per_ap:arrs
           ~mrai:(Eventsim.Time.sec mrai) ~seed ())
    with
    | exception e ->
      prerr_endline ("cannot build the workload: " ^ Printexc.to_string e);
      Stdlib.exit 2
    | env -> env
  in
  let selected =
    match only with
    | [] -> Scenario.Catalog.names
    | l ->
      List.iter
        (fun n ->
          if not (List.mem n Scenario.Catalog.names) then begin
            prerr_endline
              ("unknown scenario " ^ n ^ " (have: "
              ^ String.concat ", " Scenario.Catalog.names
              ^ ")");
            Stdlib.exit 2
          end)
        l;
      List.filter (fun n -> List.mem n l) Scenario.Catalog.names
  in
  let timed =
    List.map
      (fun name ->
        let wall0 = Unix.gettimeofday () in
        match Scenario.Catalog.run env ~scheme:scheme_label name with
        | exception e ->
          prerr_endline ("internal scenario error: " ^ Printexc.to_string e);
          Stdlib.exit 3
        | r -> (r, Unix.gettimeofday () -. wall0))
      selected
  in
  let results = List.map fst timed in
  if not json then
    List.iter (fun r -> print_endline (Scenario.Engine.summary_line r)) results;
  (match bench_out with
  | None -> ()
  | Some dir ->
    let module E = Metrics.Emit in
    let module SE = Scenario.Engine in
    let fi = float_of_int in
    let m = E.metric in
    let runs =
      List.map
        (fun ((r : SE.result), wall) ->
          let failed =
            List.length (List.filter (fun c -> not c.SE.ok) r.SE.checks)
          in
          E.run
            ~label:("scenario." ^ r.SE.name)
            ~scheme:r.SE.scheme
            ~knobs:
              [ ("pops", fi pops); ("routers_per_pop", fi rpp);
                ("peer_ases", fi pas); ("peering_points", fi points);
                ("prefixes", fi prefixes); ("aps", fi aps);
                ("arrs_per_ap", fi arrs); ("seed", fi seed);
                ("mrai_s", fi mrai) ]
            ~wall_s:wall ~sim_s:(Eventsim.Time.to_sec r.SE.sim_end)
            ~events:r.SE.events
            ~counters:(Abrr_core.Counters.to_fields r.SE.counters)
            [ m "checks" (fi (List.length r.SE.checks));
              m "checks_failed" (fi failed);
              m "invariant_violations" (fi r.SE.invariant_violations);
              m "detections" (fi r.SE.detections);
              E.metric ~unit_:"s" ~gate:false "scenario_wall_s" wall ])
        timed
    in
    let record = { E.experiment = "scenario"; runs } in
    let path = Filename.concat dir (E.filename "scenario") in
    E.write_file path record;
    prerr_endline ("benchmark record written to " ^ path));
  finish_report ~json ~expect (Scenario.Engine.report results)

let scenario_cmd =
  let doc =
    "Run the adversarial & operational scenario catalog: prefix hijack, \
     route leak, persistent flapping vs. RFC 2439 damping, a session reset \
     under churn, and the ABRR drills (ARR failure with AP takeover, live \
     repartitioning within the consistent-hashing movement bound, the \
     Sec 2.4 TBRR-to-ABRR migration). Every scenario runs under runtime \
     invariant supervision and scores named checks; findings use the \
     check/lint report schema. Exit 0 = pass, 1 = findings, 2 = usage, 3 = \
     internal error (see EXIT STATUS)."
  in
  let scheme_label_t =
    Arg.(value
         & opt (enum [ ("abrr", "abrr"); ("tbrr", "tbrr"); ("mesh", "mesh");
                       ("confed", "confed"); ("rcp", "rcp") ]) "abrr"
         & info [ "scheme" ] ~docv:"abrr|tbrr|mesh|confed|rcp"
             ~doc:"iBGP scheme the scheme-agnostic scenarios run under (the \
                   ABRR drills ignore it: arr-failover and repartition are \
                   ABRR by construction, migration runs Dual).")
  in
  let only_t =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"NAME"
             ~doc:"Run only scenario $(docv) (repeatable; default: the whole \
                   catalog in order).")
  in
  let bench_out_t =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"DIR"
             ~doc:"Write a BENCH_scenario.json record (per-scenario check / \
                   violation / detection counts plus the network-total \
                   counters) into $(docv), comparable with \
                   $(b,bench/compare.exe).")
  in
  Cmd.v (Cmd.info "scenario" ~doc ~exits:exits_doc)
    Term.(
      const scenario $ scheme_label_t $ only_t $ pops_t $ rpp_t $ pas_t
      $ points_t $ prefixes_t $ aps_t $ arrs_t $ seed_t $ mrai_t $ json_t
      $ expect_t $ bench_out_t)

(* ---- gadget --------------------------------------------------------- *)

let gadget kind flavor =
  let module G = Abrr_core.Gadgets in
  let module A = Abrr_core.Anomaly in
  let g =
    match kind with
    | `Med -> G.med_oscillation flavor
    | `Topology -> G.topology_oscillation flavor
    | `Path -> G.path_inefficiency flavor
  in
  let net = G.build g in
  let v = A.run ~max_events:50_000 net in
  Printf.printf "%s\n" g.G.description;
  Printf.printf "outcome: %s (%d best changes, %d events)\n"
    (if A.oscillates v then "OSCILLATES" else "converges")
    v.A.best_changes v.A.events;
  (match kind with
  | `Path ->
    (match N.best_exit net ~router:G.observer g.G.prefix with
    | Some e ->
      Printf.printf "observer exit: r%d (%s)\n" e
        (if e = G.near_exit then "optimal" else "detour")
    | None -> print_endline "observer has no route")
  | `Med | `Topology -> ());
  `Ok ()

let gadget_cmd =
  let kind = Arg.(value & opt gadget_enum `Med & info [ "gadget" ] ~doc:"Gadget: med, topology or path.") in
  let flavor = Arg.(value & opt gflavor_enum Abrr_core.Gadgets.G_tbrr & info [ "run-scheme" ] ~doc:"Scheme flavor.") in
  Cmd.v (Cmd.info "gadget" ~doc:"Run a Sec 2.3 anomaly gadget.")
    Term.(ret (const gadget $ kind $ flavor))

(* ---- explore / replay ----------------------------------------------- *)

let gadget_of_kind kind flavor =
  let module G = Abrr_core.Gadgets in
  match kind with
  | `Med -> G.med_oscillation flavor
  | `Topology -> G.topology_oscillation flavor
  | `Path -> G.path_inefficiency flavor

let kind_name = function `Med -> "med" | `Topology -> "topology" | `Path -> "path"

let kind_of_name = function
  | "med" -> Some `Med
  | "topology" -> Some `Topology
  | "path" -> Some `Path
  | _ -> None

let flavor_names =
  [ ("full-mesh", Abrr_core.Gadgets.G_full_mesh);
    ("tbrr", Abrr_core.Gadgets.G_tbrr);
    ("tbrr-best-external", Abrr_core.Gadgets.G_tbrr_best_external);
    ("confed", Abrr_core.Gadgets.G_confed);
    ("rcp", Abrr_core.Gadgets.G_rcp);
    ("abrr", Abrr_core.Gadgets.G_abrr 1);
    ("abrr2", Abrr_core.Gadgets.G_abrr 2) ]

let flavor_name f =
  match List.find_opt (fun (_, g) -> g = f) flavor_names with
  | Some (n, _) -> n
  | None -> "unknown"

let mode_enum = Arg.enum [ ("async", Explore.Async); ("timed", Explore.Timed) ]

let explore_run kind flavor mode por invariants check_exits depth max_states
    faults ce_out expect =
  let module E = Explore in
  let g = gadget_of_kind kind flavor in
  let sc = E.scenario_of_gadget ~check_exits g in
  let limits = { E.max_depth = depth; max_states; max_faults = faults } in
  let r = E.explore ~mode ~por ~invariants ~limits sc in
  Format.printf "%s/%s: %a@." (kind_name kind) (flavor_name flavor) E.pp_stats
    r.E.stats;
  let code =
    match r.E.verdict with
    | E.Safe { complete = true; terminal } ->
      Format.printf
        "SAFE (complete): state space exhausted, every schedule converges%s@."
        (match terminal with
        | Some d -> Printf.sprintf " to single terminal %s" d
        | None -> "");
      0
    | E.Safe { complete = false; terminal } ->
      Format.printf
        "SAFE (bounded): no violation within the budget (state space NOT \
         exhausted)%s@."
        (match terminal with
        | Some d -> Printf.sprintf "; single terminal so far %s" d
        | None -> "");
      2
    | E.Unsafe ce ->
      Format.printf "UNSAFE: %a (schedule: %d choices)@." E.pp_violation
        ce.E.violation
        (List.length ce.E.schedule);
      (match E.verify_counterexample sc ~mode ce with
      | Ok () -> Format.printf "counterexample replay verified@."
      | Error e ->
        Format.printf "counterexample replay FAILED: %s@." e;
        Stdlib.exit 3);
      (match ce_out with
      | None -> ()
      | Some path ->
        let meta =
          [ ("gadget", kind_name kind); ("flavor", flavor_name flavor);
            ("mode", (match mode with E.Async -> "async" | E.Timed -> "timed"));
            ("por", string_of_bool por) ]
        in
        (match E.Ce.save { E.Ce.meta; ce } ~path with
        | Ok () -> Format.printf "counterexample written to %s@." path
        | Error e ->
          Format.printf "cannot write %s: %s@." path e;
          Stdlib.exit 3));
      1
  in
  match expect with
  | None -> Stdlib.exit code
  | Some exp ->
    let matches =
      match (exp, r.E.verdict) with
      | `Safe, E.Safe { complete = true; _ } -> true
      | `Bounded, E.Safe { complete = false; _ } -> true
      | `Unsafe, E.Unsafe _ -> true
      | `Cycle, E.Unsafe { E.violation = E.Dispute_cycle _; _ } -> true
      | _ -> false
    in
    if matches then begin
      Format.printf "verdict matches --expect@.";
      Stdlib.exit 0
    end
    else begin
      Format.printf "verdict does NOT match --expect@.";
      Stdlib.exit 1
    end

let explore_cmd =
  let kind = Arg.(value & opt gadget_enum `Med & info [ "gadget" ] ~doc:"Gadget: med, topology or path.") in
  let flavor = Arg.(value & opt gflavor_enum Abrr_core.Gadgets.G_tbrr & info [ "run-scheme" ] ~doc:"Scheme flavor.") in
  let mode_t =
    Arg.(value & opt mode_enum Explore.Async
         & info [ "mode" ]
             ~doc:"Schedule model: $(b,async) (any pending event may fire \
                   next) or $(b,timed) (earliest-timestamp ties only).")
  in
  let por_t =
    Arg.(value & flag & info [ "no-por" ] ~doc:"Disable sleep-set partial-order reduction.")
  in
  let inv_t =
    Arg.(value & flag & info [ "no-invariants" ] ~doc:"Skip per-state runtime invariant checks.")
  in
  let exits_t =
    Arg.(value & flag
         & info [ "no-exits" ]
             ~doc:"Skip the full-mesh reference exit comparison at quiescent \
                   states (use when hunting dispute cycles on configs that \
                   are expected to deflect).")
  in
  let depth_t =
    Arg.(value & opt int 20_000 & info [ "depth" ] ~docv:"N" ~doc:"Truncate any schedule past $(docv) choices.")
  in
  let states_t =
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~docv:"N" ~doc:"Abort the search past $(docv) distinct states.")
  in
  let faults_t =
    Arg.(value & opt int 0 & info [ "faults" ] ~docv:"N" ~doc:"Allow up to $(docv) fault-injection choice points per schedule.")
  in
  let ce_out_t =
    Arg.(value & opt (some string) None
         & info [ "ce-out" ] ~docv:"FILE" ~doc:"Write the counterexample (if any) to $(docv), replayable with $(b,abrr-sim replay).")
  in
  let expect_t =
    Arg.(value
         & opt (some (enum [ ("safe", `Safe); ("bounded", `Bounded); ("unsafe", `Unsafe); ("cycle", `Cycle) ])) None
         & info [ "expect" ]
             ~doc:"Assert the verdict: $(b,safe) (exhausted, no violation), \
                   $(b,bounded) (budget hit, no violation), $(b,unsafe) (any \
                   violation), $(b,cycle) (a dispute cycle). Exit 0 on \
                   match, 1 otherwise.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded model checking: search every event schedule of a Sec 2.3 \
          gadget (depth-first with digest pruning and sleep-set POR), \
          checking invariants, loop freedom and exit correctness at every \
          quiescent state. Exit 0 = safe and exhausted, 1 = violation \
          (counterexample printed, optionally saved), 2 = budget exhausted \
          without a violation.")
    Term.(
      const explore_run $ kind $ flavor $ mode_t
      $ Term.app (const not) por_t
      $ Term.app (const not) inv_t
      $ Term.app (const not) exits_t
      $ depth_t $ states_t $ faults_t $ ce_out_t $ expect_t)

let replay_run from snap_out =
  let module E = Explore in
  match E.Ce.load ~path:from with
  | Error e -> `Error (false, from ^ ": " ^ e)
  | Ok { E.Ce.meta; ce } -> (
    let lookup k = List.assoc_opt k meta in
    match (lookup "gadget", lookup "flavor") with
    | Some gk, Some fl -> (
      match (kind_of_name gk, List.assoc_opt fl flavor_names) with
      | Some kind, Some flavor -> (
        let mode =
          match lookup "mode" with Some "timed" -> E.Timed | _ -> E.Async
        in
        let g = gadget_of_kind kind flavor in
        let sc = E.scenario_of_gadget g in
        Format.printf "%s: %s/%s counterexample, %d choices@." from gk fl
          (List.length ce.E.schedule);
        Format.printf "violation: %a@." E.pp_violation ce.E.violation;
        match E.verify_counterexample sc ~mode ce with
        | Error e -> `Error (false, "replay diverged: " ^ e)
        | Ok () -> (
          Format.printf "replay verified: violating state %s reached@."
            ce.E.state_digest;
          match snap_out with
          | None -> `Ok ()
          | Some path -> (
            let net = sc.E.fresh () in
            E.replay net ce.E.schedule;
            match Snapshot.save net ~path with
            | Ok () ->
              Format.printf "violating state checkpointed to %s@." path;
              `Ok ()
            | Error e -> `Error (false, "snapshot: " ^ e))))
      | _ ->
        `Error (false, Printf.sprintf "unknown gadget/flavor %S/%S in metadata" gk fl))
    | _ ->
      `Error
        (false, "counterexample lacks gadget metadata (write one with abrr-sim explore --ce-out)"))

let replay_cmd =
  let from_t =
    Arg.(required & opt (some string) None
         & info [ "from" ] ~docv:"FILE" ~doc:"Counterexample file written by $(b,abrr-sim explore --ce-out).")
  in
  let snap_out_t =
    Arg.(value & opt (some string) None
         & info [ "snap-out" ] ~docv:"FILE"
             ~doc:"Also checkpoint the violating state to $(docv) (a regular \
                   snapshot, usable with $(b,abrr-sim bisect)).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a schedule counterexample: rebuild the gadget scenario from \
          the file's metadata, apply the recorded choices and verify the \
          violating state is reproduced digest-exact.")
    Term.(ret (const replay_run $ from_t $ snap_out_t))

(* ---- trace ----------------------------------------------------------- *)

let trace out replay pops rpp pas points prefixes events seed =
  let topo = build_topo pops rpp pas points seed in
  let table = RG.generate topo (RG.spec ~n_prefixes:prefixes ~seed ()) in
  let events_l =
    TG.generate table (TG.spec ~events ~duration:(Eventsim.Time.days 14) ~seed ())
  in
  let local_as = Bgp.Asn.of_int 65000 in
  Topo.Mrt.save out ~local_as events_l;
  let a, w = TG.action_count events_l in
  Printf.printf "wrote %s: %d announcements, %d withdrawals\n" out a w;
  if replay then begin
    match Topo.Mrt.load out with
    | Error e -> Printf.eprintf "replay failed: %s\n" e
    | Ok loaded ->
      let cfg =
        T.config ~med_mode:Bgp.Decision.Always_compare
          ~scheme:(T.abrr_scheme ~aps:8 ~arrs_per_ap:2 topo)
          topo
      in
      let net = N.create cfg in
      RG.inject_all table net;
      ignore (N.run ~max_events:200_000_000 net);
      TG.schedule net loaded;
      let o = N.run ~max_events:500_000_000 net in
      Printf.printf "replayed %d events from disk: %s\n" (List.length loaded)
        (Format.asprintf "%a" Eventsim.Sim.pp_outcome o)
  end;
  `Ok ()

let trace_cmd =
  let out = Arg.(value & opt string "trace.mrt" & info [ "out" ] ~doc:"Output MRT file.") in
  let replay = Arg.(value & flag & info [ "replay" ] ~doc:"Reload the file and replay it.") in
  Cmd.v (Cmd.info "trace" ~doc:"Generate (and optionally replay) an MRT update trace.")
    Term.(ret (const trace $ out $ replay $ pops_t $ rpp_t $ pas_t $ points_t
               $ prefixes_t $ events_t $ seed_t))

(* ---- boot ------------------------------------------------------------ *)

let boot sessions rtt_ms cost_us =
  let r =
    Abrr_core.Session_setup.run
      (Abrr_core.Session_setup.spec ~sessions ~rtt:(Eventsim.Time.ms rtt_ms)
         ~per_message_cost:(Eventsim.Time.us cost_us) ())
  in
  Printf.printf "%d sessions established in %.3f s (%d messages processed)\n"
    r.Abrr_core.Session_setup.established
    (Eventsim.Time.to_sec r.Abrr_core.Session_setup.boot_time)
    r.Abrr_core.Session_setup.messages_processed;
  `Ok ()

let boot_cmd =
  let sessions = Arg.(value & opt int 1000 & info [ "sessions" ] ~doc:"Number of iBGP sessions.") in
  let rtt = Arg.(value & opt int 20 & info [ "rtt-ms" ] ~doc:"Round-trip time, ms.") in
  let cost = Arg.(value & opt int 200 & info [ "cost-us" ] ~doc:"CPU cost per inbound message, us.") in
  Cmd.v (Cmd.info "boot" ~doc:"Measure ARR boot time through the BGP FSM (Sec 3.3).")
    Term.(ret (const boot $ sessions $ rtt $ cost))

(* ---- partition -------------------------------------------------------- *)

let partition aps =
  Format.printf "%a@." Abrr_core.Partition.pp (Abrr_core.Partition.uniform aps);
  `Ok ()

let partition_cmd =
  Cmd.v (Cmd.info "partition" ~doc:"Print a uniform address-partition layout.")
    Term.(ret (const partition $ aps_t))

let () =
  let doc = "Address-Based Route Reflection simulator (CoNEXT 2011 reproduction)" in
  let info = Cmd.info "abrr-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ simulate_cmd; bench_cmd; snapshot_cmd; resume_cmd; bisect_cmd;
            check_cmd; lint_cmd; scenario_cmd; gadget_cmd; explore_cmd;
            replay_cmd; trace_cmd; boot_cmd; partition_cmd ]))
